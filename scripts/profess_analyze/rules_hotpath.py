"""Hot-path rules: a call-extent walk from the simulation kernel's
hot loops.

The walk starts at HOT_ROOTS (EventQueue extraction/scheduling, the
Channel scheduler, the HybridController access path, MDM's decision
path) and follows calls the model can resolve: same-class methods,
methods reached through a member whose declared type names a known
class, and free functions defined in the same translation unit.
Within every reachable body:

hot-heap-alloc     plain `new` (placement `::new (addr)` is fine),
                   malloc/calloc/realloc, make_unique/make_shared.
                   Steady-state container growth (push_back into a
                   reserved vector) is the accepted amortized
                   pattern and is not flagged.
hot-std-function   std::function creates/copies type-erased heap
                   callables; use InlineCallback
                   (common/inline_function.hh).
hot-virtual-call   virtual dispatch through a member: indirect
                   branches in the kernel loop.  The one documented
                   exemption is the policy boundary
                   (VIRTUAL_EXEMPT): one virtual call per policy
                   event is the plugin architecture itself.
hot-unlikely       telemetry/fault-hook pointer tests in hot-class
                   bodies must be wrapped in PROFESS_UNLIKELY so
                   the off state stays one predictable branch.
"""

from .lexer import Tok
from .rules_base import Finding, Rule

#: Reachability roots: (class, method).  "*" = every method.
HOT_ROOTS = [
    ("EventQueue", "runOne"),
    ("EventQueue", "run"),
    ("EventQueue", "runUntil"),
    ("EventQueue", "schedule"),
    ("EventQueue", "scheduleIn"),
    ("Channel", "push"),
    ("Channel", "trySchedule"),
    ("Channel", "pickNext"),
    ("Channel", "commit"),
    ("Channel", "executeSwap"),
    ("HybridController", "access"),
    ("HybridController", "serve"),
    ("HybridController", "swapDone"),
    ("HybridController", "finishSwap"),
    ("Mdm", "onAccess"),
    ("Mdm", "decide"),
]

#: Virtual-dispatch exemptions: class -> architectural reason.
VIRTUAL_EXEMPT = {
    "MigrationPolicy":
        "the policy plugin boundary: exactly one virtual call per "
        "policy event is the architecture (DESIGN.md 2/4c)",
    "SwapHost":
        "inverse edge of the policy boundary (policy -> controller)",
    "TraceSource":
        "per-access trace generation boundary (core model frontend)",
    "FaultInjector":
        "fault-injection hook (DESIGN.md 4f): consulted only at "
        "swap completion behind a PROFESS_UNLIKELY null check; "
        "absent an injector the virtual calls never execute",
    "BlockOwnerOracle":
        "OS ownership oracle (allocator -> controller): one query "
        "per served access feeds AccessInfo.m1Owner for the policy; "
        "part of the plugin boundary like MigrationPolicy",
}

#: Telemetry / fault-hook pointer members that hot branches test.
TELEMETRY_PTRS = {
    "attr_", "chrome_", "decision_", "sink_", "trace_", "faults_",
    "slot_", "sampler_", "timer_", "telemetry_",
}

#: Classes whose bodies get the hot-unlikely branch check.
HOT_CLASSES = {"EventQueue", "Channel", "HybridController", "Mdm",
               "StCache", "CoreModel"}

_HEAP_CALLS = {"malloc", "calloc", "realloc", "make_unique",
               "make_shared"}


class _Walker:
    """Builds the reachable-function set once per program."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.reachable = {}   # Function -> via (root chain string)
        self._fn_tu = {}
        for tu in ctx.tus.values():
            for fn in tu.functions:
                self._fn_tu[id(fn)] = tu
        self._walk()

    def tu_of(self, fn):
        return self._fn_tu[id(fn)]

    def _lookup(self, qual):
        return self.ctx.functions_by_qual.get(qual, [])

    def _walk(self):
        work = []
        for cls, method in HOT_ROOTS:
            for fn in self._lookup("%s::%s" % (cls, method)):
                work.append((fn, "%s::%s" % (cls, method)))
        while work:
            fn, via = work.pop()
            if id(fn) in {id(f) for f in self.reachable}:
                continue
            self.reachable[fn] = via
            tu = self.tu_of(fn)
            for call in fn.calls:
                for target in self._resolve(fn, tu, call):
                    if target not in self.reachable:
                        work.append((target, via))

    def _resolve(self, fn, tu, call):
        out = []
        if call.receiver in (None, "this") and fn.cls:
            out += self._lookup("%s::%s" % (fn.cls, call.name))
        if call.receiver not in (None, "this") and fn.cls:
            mtype = self.ctx.member_type(fn.cls, call.receiver)
            if mtype:
                for word in mtype.replace("*", " ").split():
                    if word in self.ctx.classes:
                        out += self._lookup(
                            "%s::%s" % (word, call.name))
        if call.receiver is None:
            # free function defined in the same TU
            for f in tu.functions:
                if f.cls is None and f.name == call.name:
                    out.append(f)
        return out


class HotPathWalkRules(Rule):
    """One walk, three banned-construct checks (heap, std::function,
    virtual dispatch)."""

    name = "hot-path"
    description = "banned constructs reachable from the hot loops"

    def check_program(self, ctx):
        walker = _Walker(ctx)
        for fn, via in walker.reachable.items():
            tu = walker.tu_of(fn)
            yield from self._check_body(ctx, tu, fn, via)

    def _check_body(self, ctx, tu, fn, via):
        toks = tu.tokens
        start, end = fn.body
        for j in range(start, end):
            t = toks[j]
            if t.kind != Tok.ID:
                continue
            if t.text == "new":
                prev = toks[j - 1].text if j > start else ""
                nxt = toks[j + 1].text if j + 1 < end else ""
                if prev != "::" and nxt != "(":
                    yield Finding(
                        "hot-heap-alloc", tu.path, t.line,
                        "'new' in %s(), reachable from hot root "
                        "%s; pool it (common/pool.hh) or move it "
                        "off the hot path" % (fn.qualified, via),
                        "")
            elif t.text in _HEAP_CALLS and j + 1 < end and \
                    toks[j + 1].text == "(":
                yield Finding(
                    "hot-heap-alloc", tu.path, t.line,
                    "'%s' in %s(), reachable from hot root %s"
                    % (t.text, fn.qualified, via), "")
            elif t.text == "function" and j >= 2 and \
                    toks[j - 1].text == "::" and \
                    toks[j - 2].text == "std":
                yield Finding(
                    "hot-std-function", tu.path, t.line,
                    "std::function in %s(), reachable from hot "
                    "root %s; use InlineCallback "
                    "(common/inline_function.hh)"
                    % (fn.qualified, via), "")
        yield from self._virtual_calls(ctx, tu, fn, via)

    def _virtual_calls(self, ctx, tu, fn, via):
        if not fn.cls:
            return
        for call in fn.calls:
            if call.receiver in (None, "this"):
                continue
            mtype = ctx.member_type(fn.cls, call.receiver)
            if not mtype:
                continue
            for word in mtype.replace("*", " ").replace("&", " ") \
                    .split():
                info = ctx.classes.get(word)
                if info is None:
                    continue
                virtuals = set(info.virtual_methods)
                for base in info.bases:
                    b = ctx.classes.get(base)
                    if b:
                        virtuals |= b.virtual_methods
                if call.name in virtuals:
                    if word in VIRTUAL_EXEMPT:
                        break
                    yield Finding(
                        "hot-virtual-call", tu.path, call.line,
                        "virtual call %s->%s() through %s in "
                        "%s(), reachable from hot root %s; "
                        "devirtualize or add a documented "
                        "exemption"
                        % (call.receiver, call.name, word,
                           fn.qualified, via), "")
                break


class HotUnlikelyRule(Rule):
    name = "hot-unlikely"
    description = ("telemetry-pointer branches in hot classes need "
                   "PROFESS_UNLIKELY")

    def check_tu(self, tu, ctx):
        toks = tu.tokens
        n = len(toks)
        for fn in tu.functions:
            if fn.cls not in HOT_CLASSES:
                continue
            start, end = fn.body
            j = start
            while j < end:
                t = toks[j]
                if t.kind == Tok.ID and t.text == "if" and \
                        j + 1 < end and toks[j + 1].text == "(":
                    depth = 0
                    k = j + 1
                    cond = []
                    while k < end:
                        if toks[k].text == "(":
                            depth += 1
                        elif toks[k].text == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        cond.append(toks[k])
                        k += 1
                    texts = {c.text for c in cond}
                    tested = {p for p in texts & TELEMETRY_PTRS
                              if self._is_ptr_test(cond, p)}
                    if tested and "PROFESS_UNLIKELY" not in texts:
                        yield Finding(
                            self.name, tu.path, t.line,
                            "branch on telemetry pointer %s in "
                            "%s() lacks PROFESS_UNLIKELY: the "
                            "off state must stay one predictable "
                            "branch"
                            % (", ".join(sorted(tested)),
                               fn.qualified), "")
                    j = k
                    continue
                j += 1

    @staticmethod
    def _is_ptr_test(cond, ptr):
        """True when the condition tests `ptr`'s presence (that is
        the branch that must be hinted) rather than merely calling
        through an already-checked pointer."""
        for idx, c in enumerate(cond):
            if c.text != ptr:
                continue
            prev = cond[idx - 1].text if idx > 0 else ""
            nxt = cond[idx + 1].text if idx + 1 < len(cond) else ""
            if prev == "!":
                return True
            if nxt in ("==", "!=") or prev in ("==", "!="):
                return True
            if nxt in ("", "&&", "||") and prev in ("", "&&", "||",
                                                    "("):
                return True  # bare truthiness test
        return False


RULES = [HotPathWalkRules(), HotUnlikelyRule()]
