"""Lock-order extraction and cycle detection.

Builds the mutex acquisition graph across the whole program:

  * node: one mutex, identified as "Class::member" (for mutex
    members) or "<file>::name" (for file-scope mutexes);
  * edge A -> B: some function acquires A (lock_guard/unique_lock/
    scoped_lock/.lock()) and, inside its extent, either acquires B
    directly or calls a function that acquires B.  Calls are
    resolved like the hot-path walk: same-class methods, methods
    through typed members, same-TU free functions -- and, for lock
    purposes, any uniquely-named function in the program (a lock
    cycle hidden behind a unique helper name must not escape).

A cycle in the graph is a potential deadlock between the
thread_pool / openmetrics / telemetry / logging subsystems and
fails the analysis (rule lock-order).  Held-ness is tracked by
guard scope (a lock_guard covers its enclosing block's line
extent; a bare .lock() conservatively covers the rest of its
block), so sequential critical sections in one function do not
fabricate edges.
"""

from .rules_base import Finding, Rule


class LockOrderRule(Rule):
    name = "lock-order"
    description = "mutex acquisition graph must be acyclic"

    def check_program(self, ctx):
        # function -> set of mutexes it acquires directly
        acquires = {}
        fn_tu = {}
        for tu in ctx.tus.values():
            for fn in tu.functions:
                fn_tu[id(fn)] = tu
                if fn.locks:
                    acquires[id(fn)] = fn
        if not acquires:
            return

        edges = {}    # mutex -> {mutex: (path, line)}

        def add_edge(a, b, path, line):
            if a == b:
                return
            edges.setdefault(a, {}).setdefault(b, (path, line))

        for fn in (f for f in acquires.values()):
            tu = fn_tu[id(fn)]
            locks = fn.locks
            # direct nesting inside one function: B acquired within
            # A's guard scope (line extents from the model)
            for i in range(len(locks)):
                for j in range(len(locks)):
                    if i != j and locks[i].held_at(locks[j].line) \
                            and locks[j].line >= locks[i].line:
                        add_edge(locks[i].mutex, locks[j].mutex,
                                 tu.path, locks[j].line)
            # calls made while holding
            for call in fn.calls:
                holders = [l for l in locks if l.held_at(call.line)]
                if not holders:
                    continue
                for target in self._resolve(ctx, tu, fn, call):
                    for l2 in target.locks:
                        for h in holders:
                            add_edge(h.mutex, l2.mutex, tu.path,
                                     call.line)

        cycle = self._find_cycle(edges)
        if cycle:
            path, line = edges[cycle[0]][cycle[1]]
            yield Finding(
                self.name, path, line,
                "lock-order cycle: %s (a thread holding the first "
                "mutex can wait on the last while another thread "
                "holds them in reverse)"
                % "  ->  ".join(cycle + [cycle[0]]), "")

    def _resolve(self, ctx, tu, fn, call):
        out = []
        if call.receiver in (None, "this") and fn.cls:
            out += ctx.functions_by_qual.get(
                "%s::%s" % (fn.cls, call.name), [])
        if call.receiver not in (None, "this") and fn.cls:
            mtype = ctx.member_type(fn.cls, call.receiver)
            if mtype:
                for word in mtype.replace("*", " ").split():
                    if word in ctx.classes:
                        out += ctx.functions_by_qual.get(
                            "%s::%s" % (word, call.name), [])
        if not out:
            # unique global name (lock analysis only)
            cands = ctx.functions_by_name.get(call.name, [])
            if len(cands) == 1:
                out.append(cands[0][1])
        return out

    def _find_cycle(self, edges):
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {}
        stack = []

        def dfs(u):
            color[u] = GRAY
            stack.append(u)
            for v in sorted(edges.get(u, {})):
                c = color.get(v, WHITE)
                if c == GRAY:
                    i = stack.index(v)
                    return stack[i:]
                if c == WHITE:
                    r = dfs(v)
                    if r:
                        return r
            stack.pop()
            color[u] = BLACK
            return None

        for u in sorted(edges):
            if color.get(u, WHITE) == WHITE:
                r = dfs(u)
                if r:
                    return r
        return None


RULES = [LockOrderRule()]
