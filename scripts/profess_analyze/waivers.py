"""Waiver loading, validation and matching.

scripts/lint_waivers.json is a list of objects:

    {"rule":    "<rule name>",
     "path":    "<repo-relative file>",
     "pattern": "<optional regex over the offending line>",
     "reason":  "<why this exception is sound>",
     "expires": "YYYY-MM-DD"}

`reason` and `expires` are REQUIRED: a waiver is a debt with an
owner and a due date, not a mute button.  The analyzer errors
(exit 2) when a waiver has expired, and when a waiver matched no
raw finding in the run (stale: the code it excused is gone, so the
waiver must go too).  Architectural exceptions that should never
expire do not belong here -- they are encoded next to the rule
with their rationale (e.g. WALLCLOCK_WAIVED, VIRTUAL_EXEMPT).
"""

import datetime
import json
import os
import re


class WaiverError(Exception):
    pass


class Waiver:
    def __init__(self, obj, index):
        for key in ("rule", "path", "reason", "expires"):
            if key not in obj:
                raise WaiverError(
                    "lint_waivers.json entry %d: missing required "
                    "field '%s': %r" % (index, key, obj))
        self.rule = obj["rule"]
        self.path = obj["path"]
        self.pattern = obj.get("pattern")
        self.reason = obj["reason"]
        try:
            self.expires = datetime.date.fromisoformat(
                obj["expires"])
        except ValueError:
            raise WaiverError(
                "lint_waivers.json entry %d: expires=%r is not an "
                "ISO date (YYYY-MM-DD)" % (index, obj["expires"]))
        self.matched = 0

    def matches(self, finding):
        if self.rule != finding.rule or self.path != finding.path:
            return False
        if self.pattern and not re.search(self.pattern,
                                          finding.line_text):
            return False
        self.matched += 1
        return True


def load(repo, today=None):
    """@return list of Waiver; raises WaiverError on a malformed or
    expired entry."""
    path = os.path.join(repo, "scripts", "lint_waivers.json")
    if not os.path.exists(path):
        return []
    with open(path) as f:
        objs = json.load(f)
    today = today or datetime.date.today()
    waivers = []
    for i, obj in enumerate(objs):
        w = Waiver(obj, i)
        if w.expires < today:
            raise WaiverError(
                "waiver expired %s: [%s] %s (%s) -- fix the code "
                "or renew the waiver with a fresh reason"
                % (w.expires.isoformat(), w.rule, w.path, w.reason))
        waivers.append(w)
    return waivers


def apply(waivers, findings):
    """Split findings into (kept, waived)."""
    kept, waived = [], []
    for f in findings:
        if any(w.matches(f) for w in waivers):
            waived.append(f)
        else:
            kept.append(f)
    return kept, waived


def stale(waivers):
    """Waivers that matched nothing this run."""
    return [w for w in waivers if w.matched == 0]
