"""File walker, rule runner and waiver application."""

import os

from . import rules_determinism
from . import rules_hotpath
from . import rules_lint
from . import rules_locks
from . import waivers as waivers_mod
from .cppmodel import TU
from .rules_base import Context

#: Directories scanned by default, relative to the repo root.
SOURCE_DIRS = ("src", "tests", "bench", "examples")

#: Intentionally-violating rule fixtures -- scanned only by the
#: fixture test driver, never by the default repo scan.
EXCLUDE_PREFIXES = ("tests/analyzer_fixtures/",)

ALL_RULES = (rules_lint.RULES + rules_determinism.RULES +
             rules_hotpath.RULES + rules_locks.RULES)


def source_files(repo, paths=None):
    """Repo-relative .hh/.cc paths to analyze, sorted."""
    if paths:
        out = []
        for p in paths:
            ap = os.path.join(repo, p)
            if os.path.isdir(ap):
                out += _walk_dir(repo, p)
            else:
                out.append(os.path.relpath(ap, repo))
        return sorted(set(out))
    files = []
    for d in SOURCE_DIRS:
        if os.path.isdir(os.path.join(repo, d)):
            files += _walk_dir(repo, d)
    return sorted(files)


def _walk_dir(repo, rel):
    files = []
    for dirpath, dirnames, filenames in os.walk(
            os.path.join(repo, rel)):
        dirnames.sort()
        for fname in sorted(filenames):
            if not fname.endswith((".hh", ".cc")):
                continue
            relpath = os.path.relpath(
                os.path.join(dirpath, fname), repo)
            relpath = relpath.replace(os.sep, "/")
            if relpath.startswith(EXCLUDE_PREFIXES):
                continue
            files.append(relpath)
    return files


def build_context(repo, files):
    tus = {}
    for rel in files:
        with open(os.path.join(repo, rel), encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
        tus[rel] = TU(rel, text)
    return Context(repo, tus)


def run_rules(ctx, rules=None):
    """@return raw findings (before waivers), sorted by location."""
    rules = ALL_RULES if rules is None else rules
    findings = []
    for rel in sorted(ctx.tus):
        tu = ctx.tus[rel]
        for rule in rules:
            for f in rule.check_tu(tu, ctx):
                if not f.line_text:
                    f.line_text = ctx.line_text(tu, f.line)
                findings.append(f)
    for rule in rules:
        for f in rule.check_program(ctx):
            tu = ctx.tus.get(f.path)
            if tu is not None and not f.line_text:
                f.line_text = ctx.line_text(tu, f.line)
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


class Result:
    def __init__(self, kept, waived, stale_waivers):
        self.kept = kept
        self.waived = waived
        self.stale_waivers = stale_waivers


def analyze(repo, paths=None, use_waivers=True, rules=None,
            today=None):
    """Full pipeline.  Raises waivers_mod.WaiverError on malformed
    or expired waivers."""
    files = source_files(repo, paths)
    ctx = build_context(repo, files)
    raw = run_rules(ctx, rules)
    if not use_waivers:
        return Result(raw, [], [])
    ws = waivers_mod.load(repo, today=today)
    kept, waived = waivers_mod.apply(ws, raw)
    # Only report staleness on full-repo scans: a path-restricted
    # run legitimately never reaches most waived files.
    stale_list = waivers_mod.stale(ws) if not paths else []
    return Result(kept, waived, stale_list)
