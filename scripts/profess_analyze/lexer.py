"""C++ tokenizer for profess_analyze.

Not a full lexer -- just enough structure for the rule passes:
comments are dropped (line numbers preserved), string and char
literals become single tokens (so nothing inside them matches),
preprocessor directives become one PP token per logical line, and
everything else is split into identifiers, numbers and punctuation.
Multi-character operators the rules care about (::, ->, <<, >>,
+=, -=, ==, !=, &&, ||) are kept as one token.
"""

import re


class Tok:
    """One token: kind, text, 1-based line."""

    __slots__ = ("kind", "text", "line")

    # kinds
    ID = "id"
    NUM = "num"
    STR = "str"
    CHAR = "char"
    PUNCT = "punct"
    PP = "pp"  # whole preprocessor directive (text = logical line)

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return "Tok(%s, %r, %d)" % (self.kind, self.text, self.line)


_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"(?:0[xXbB])?[0-9][0-9a-fA-F'.eEpPxXuUlLfF+-]*")
_PUNCT2 = {
    "::", "->", "<<", ">>", "+=", "-=", "*=", "/=", "==", "!=",
    "<=", ">=", "&&", "||", "++", "--", "|=", "&=", "^=",
}


def tokenize(text):
    """@return list of Tok for `text` (one file's contents)."""
    toks = []
    i, n = 0, len(text)
    line = 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            line += text.count("\n", i, j)
            i = j
            continue
        if c == "#" and at_line_start:
            # One PP token per logical (backslash-continued) line.
            start, start_line = i, line
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    j = n
                if text[max(i, j - 1):j].endswith("\\"):
                    line += 1
                    i = j + 1
                    continue
                i = j
                break
            toks.append(Tok(Tok.PP, text[start:i], start_line))
            continue
        at_line_start = False
        if c == '"':
            # Raw strings appear in no rule-relevant context; handle
            # the plain escaped form.
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            toks.append(Tok(Tok.STR, text[i:j], line))
            line += text.count("\n", i, j)
            i = j
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            toks.append(Tok(Tok.CHAR, text[i:j], line))
            i = j
            continue
        m = _ID_RE.match(text, i)
        if m:
            toks.append(Tok(Tok.ID, m.group(0), line))
            i = m.end()
            continue
        if c.isdigit():
            m = _NUM_RE.match(text, i)
            toks.append(Tok(Tok.NUM, m.group(0), line))
            i = m.end()
            continue
        two = text[i:i + 2]
        if two in _PUNCT2:
            toks.append(Tok(Tok.PUNCT, two, line))
            i += 2
            continue
        toks.append(Tok(Tok.PUNCT, c, line))
        i += 1
    return toks


def strip_comments(text):
    """// and /* */ removed, line structure and literals kept."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append(text[i:j + 1])
            i = j + 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)
