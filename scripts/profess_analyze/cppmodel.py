"""Per-translation-unit model for profess_analyze.

Built from the token stream (lexer.py), one TU per source file:

  includes        #include targets in order (include graph edges)
  classes         name -> ClassInfo: member declarations (name ->
                  type text), virtual method names, base classes,
                  mutex-typed members
  functions       every function definition with its qualified
                  name, body token extent, enclosing class, call
                  sites (callee name + receiver member, if any),
                  lock acquisitions and local static declarations
  ns_vars         namespace-scope variable definitions (globals)

The parser is heuristic -- a scope stack driven by brace matching,
good enough for this codebase's uniform style -- and deliberately
over-approximates: rules built on it must tolerate an occasional
unresolved call, never a missed extent.  Everything is line-
addressed so findings point at real source lines.
"""

from .lexer import Tok, tokenize

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "new", "delete", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "alignof", "decltype", "throw", "case",
    "do", "else", "goto", "default", "using", "typedef", "typename",
    "template", "operator", "noexcept", "static_assert", "assert",
    "defined",
}

_TYPE_QUALIFIERS = {
    "const", "constexpr", "static", "inline", "mutable", "volatile",
    "extern", "thread_local", "unsigned", "signed", "long", "short",
    "virtual", "explicit", "friend", "typename", "struct", "class",
}


class ClassInfo:
    def __init__(self, name, line):
        self.name = name
        self.line = line
        self.bases = []            # base class names (last id each)
        self.members = {}          # member name -> type text
        self.member_lines = {}     # member name -> line
        self.virtual_methods = set()
        self.mutex_members = set()


class Call:
    """One call site inside a function body."""

    __slots__ = ("name", "receiver", "line")

    def __init__(self, name, receiver, line):
        self.name = name          # callee (last identifier)
        self.receiver = receiver  # receiver id before . / -> or None
        self.line = line


class LockAcq:
    """One mutex acquisition inside a function body."""

    __slots__ = ("mutex", "line", "end_line", "kind")

    def __init__(self, mutex, line, end_line, kind):
        self.mutex = mutex  # qualified "Class::member" or "<file>::name"
        self.line = line          # acquisition line
        self.end_line = end_line  # last line the lock is held on
        self.kind = kind          # "guard" | "lock"

    def held_at(self, line):
        return self.line <= line <= self.end_line


class Function:
    def __init__(self, name, cls, line):
        self.name = name          # unqualified
        self.cls = cls            # enclosing/qualifying class or None
        self.line = line
        self.body = (0, 0)        # [start, end) token indices
        self.calls = []           # [Call]
        self.locks = []           # [LockAcq]
        self.local_statics = []   # [(name, line, is_singleton)]

    @property
    def qualified(self):
        return "%s::%s" % (self.cls, self.name) if self.cls else self.name


class TU:
    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.tokens = tokenize(text)
        self.includes = []        # [(target, line, style)]
        self.classes = {}         # name -> ClassInfo
        self.functions = []       # [Function]
        self.ns_vars = []         # [(name, line, type_text)]
        _Parser(self).parse()


def _match_brace(toks, i):
    """toks[i] is '{'; @return index one past its matching '}'."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == Tok.PUNCT:
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def _match_paren(toks, i):
    """toks[i] is '('; @return index one past its matching ')'."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == Tok.PUNCT:
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


class _Parser:
    def __init__(self, tu):
        self.tu = tu
        self.toks = tu.tokens

    def parse(self):
        self._collect_includes()
        self._scan_scope(0, len(self.toks), cls=None)

    def _collect_includes(self):
        for t in self.toks:
            if t.kind != Tok.PP:
                continue
            s = t.text.lstrip("#").strip()
            if not s.startswith("include"):
                continue
            s = s[len("include"):].strip()
            if s.startswith('"'):
                end = s.find('"', 1)
                if end > 0:
                    self.tu.includes.append((s[1:end], t.line, '"'))
            elif s.startswith("<"):
                end = s.find(">", 1)
                if end > 0:
                    self.tu.includes.append((s[1:end], t.line, "<"))

    # ------------------------------------------------------------
    # Scope scanning
    # ------------------------------------------------------------

    def _scan_scope(self, i, end, cls):
        """Scan [i, end) at namespace/class scope."""
        toks = self.toks
        while i < end:
            t = toks[i]
            if t.kind == Tok.PP:
                i += 1
                continue
            if t.kind == Tok.ID and t.text == "namespace":
                # namespace [name] { ... }  (or namespace alias)
                j = i + 1
                if j < end and toks[j].kind == Tok.ID:
                    j += 1
                if j < end and toks[j].text == "{":
                    close = _match_brace(toks, j)
                    self._scan_scope(j + 1, close - 1, cls)
                    i = close
                    continue
                i = j + 1
                continue
            if (t.kind == Tok.ID and t.text in ("class", "struct")
                    and cls is None):
                nxt = self._class_def(i, end)
                if nxt is not None:
                    i = nxt
                    continue
            if t.kind == Tok.ID and t.text == "enum":
                # enum [class] Name [: type] { ... };
                j = i + 1
                while j < end and toks[j].text != "{" \
                        and toks[j].text != ";":
                    j += 1
                i = _match_brace(toks, j) if (
                    j < end and toks[j].text == "{") else j + 1
                continue
            if t.text == "{":
                # Stray brace (extern "C", initializer...): skip.
                i = _match_brace(toks, i)
                continue
            nxt = self._function_or_decl(i, end, cls)
            i = nxt

    def _class_def(self, i, end):
        """Parse class/struct definition at toks[i]; None if a
        forward declaration or template usage."""
        toks = self.toks
        j = i + 1
        # skip attributes / alignas
        if j < end and toks[j].kind != Tok.ID:
            return None
        name = toks[j].text
        j += 1
        info = ClassInfo(name, toks[i].line)
        if j < end and toks[j].text == ":":
            j += 1
            while j < end and toks[j].text != "{":
                if toks[j].kind == Tok.ID and toks[j].text not in (
                        "public", "private", "protected", "virtual"):
                    info.bases.append(toks[j].text)
                j += 1
            # keep only last id per base path (A::B -> B kept anyway)
        if j >= end or toks[j].text != "{":
            return None  # forward decl / variable of elaborated type
        close = _match_brace(toks, j)
        self.tu.classes[name] = info
        self._scan_class_body(j + 1, close - 1, info)
        # skip trailing "name;" of "class X {...} x;"
        k = close
        while k < end and toks[k].text != ";":
            k += 1
        return k + 1

    def _scan_class_body(self, i, end, info):
        toks = self.toks
        while i < end:
            t = toks[i]
            if t.kind == Tok.PP:
                i += 1
                continue
            if t.text in ("public", "private", "protected"):
                i += 2  # label + ':'
                continue
            if t.kind == Tok.ID and t.text in ("class", "struct"):
                nxt = self._class_def(i, end)  # nested class
                if nxt is not None:
                    i = nxt
                    continue
            if t.kind == Tok.ID and t.text == "enum":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                i = _match_brace(toks, j) if (
                    j < end and toks[j].text == "{") else j + 1
                continue
            # statement: up to ';' or a brace-bodied member function
            stmt_start = i
            is_virtual = False
            j = i
            depth_guard = 0
            while j < end:
                tj = toks[j]
                if tj.kind == Tok.ID and tj.text == "virtual":
                    is_virtual = True
                if tj.text == "(":
                    j = _match_paren(toks, j)
                    continue
                if tj.text == "{":
                    break
                if tj.text == ";":
                    break
                if tj.text == "=":
                    # default member init or = 0 / = default
                    pass
                j += 1
                depth_guard += 1
                if depth_guard > 100000:
                    break
            if j >= end:
                break
            if toks[j].text == "{":
                # member function definition (or braced init).
                fn = self._try_function(stmt_start, j, info.name)
                close = _match_brace(toks, j)
                if fn is not None:
                    fn.body = (j + 1, close - 1)
                    self._scan_body(fn)
                    self.tu.functions.append(fn)
                    if is_virtual:
                        info.virtual_methods.add(fn.name)
                i = close
                if i < end and toks[i].text == ";":
                    i += 1
                continue
            # plain declaration ending at ';'
            self._class_member_decl(stmt_start, j, info, is_virtual)
            i = j + 1

    def _class_member_decl(self, i, end, info, is_virtual):
        """Member variable or method declaration in [i, end)."""
        toks = self.toks
        # method declaration: name '(' ... ')'
        k = i
        paren = None
        while k < end:
            if toks[k].text == "(":
                paren = k
                break
            k += 1
        if paren is not None:
            # name before '(' is the method
            m = paren - 1
            if m >= i and toks[m].kind == Tok.ID:
                if is_virtual or self._is_virtual_decl(i, paren):
                    info.virtual_methods.add(toks[m].text)
            return
        # variable: last id before '=' / '{' / end is the name
        stop = end
        for k in range(i, end):
            if toks[k].text in ("=", "{"):
                stop = k
                break
        name_idx = None
        for k in range(stop - 1, i - 1, -1):
            if toks[k].kind == Tok.ID:
                name_idx = k
                break
        if name_idx is None:
            return
        name = toks[name_idx].text
        if name in _TYPE_QUALIFIERS or name == "using":
            return
        type_text = " ".join(t.text for t in toks[i:name_idx])
        if not type_text or toks[i].text in ("using", "typedef",
                                             "friend", "template"):
            return
        info.members[name] = type_text
        info.member_lines[name] = toks[name_idx].line
        if "mutex" in type_text:
            info.mutex_members.add(name)

    def _is_virtual_decl(self, i, paren):
        for k in range(i, paren):
            if self.toks[k].text == "virtual":
                return True
        return False

    # ------------------------------------------------------------
    # Function definitions at namespace scope
    # ------------------------------------------------------------

    def _function_or_decl(self, i, end, cls):
        """At namespace scope: one declaration/definition starting
        at i.  @return index after it."""
        toks = self.toks
        j = i
        while j < end:
            tj = toks[j]
            if tj.kind == Tok.PP:
                j += 1
                continue
            if tj.text == "(":
                j = _match_paren(toks, j)
                # function?  skip trailer to '{' / ';' / '='
                k = self._skip_fn_trailer(j, end)
                if k < end and toks[k].text == "{":
                    fn = self._try_function(i, k, None)
                    close = _match_brace(toks, k)
                    if fn is not None:
                        fn.body = (k + 1, close - 1)
                        self._scan_body(fn)
                        self.tu.functions.append(fn)
                        return close
                    return close
                if k < end and toks[k].text == ";":
                    return k + 1
                # '=' (function = default / var init with call)
                j = k
                continue
            if tj.text == "{":
                return _match_brace(toks, j)
            if tj.text == ";":
                self._ns_var_decl(i, j)
                return j + 1
            j += 1
        return end

    def _skip_fn_trailer(self, j, end):
        """After a ')', skip const/noexcept/override/-> type and a
        constructor initializer list; @return index of '{'/';'/'='."""
        toks = self.toks
        while j < end:
            t = toks[j]
            if t.text in ("{", ";", "="):
                return j
            if t.kind == Tok.ID and t.text in (
                    "const", "noexcept", "override", "final",
                    "try"):
                j += 1
                continue
            if t.text == "->":
                j += 1
                continue
            if t.text == "(":
                j = _match_paren(toks, j)
                continue
            if t.text == ":":
                # ctor initializer: id ( ... ) / id { ... } , ...
                j += 1
                while j < end and toks[j].text != "{":
                    if toks[j].text == "(":
                        j = _match_paren(toks, j)
                        # after an init's ')', a '{' that follows a
                        # ',' continues the list; a direct '{' is
                        # the body.
                        if j < end and toks[j].text == "{":
                            return j
                        continue
                    if toks[j].text == "{":
                        break
                    j += 1
                return j
            if t.kind in (Tok.ID, Tok.NUM) or t.text in (
                    "::", "<", ">", "&", "*", ",", "...", "."):
                j += 1
                continue
            return j
        return j

    def _try_function(self, i, brace, cls):
        """Declaration tokens [i, brace) end in ')' (+trailer); build
        a Function if a name can be extracted."""
        toks = self.toks
        # find the parameter list: last top-level '(' ... ')' before
        # any trailer.  Scan forward pairing parens; remember the one
        # whose close is followed by trailer/{.
        k = i
        cand = None
        while k < brace:
            if toks[k].text == "(":
                close = _match_paren(toks, k)
                cand = k
                k = close
                continue
            if toks[k].text == ":" and cand is not None:
                break  # ctor initializer starts; cand was params
            k += 1
        if cand is None or cand == i:
            return None
        m = cand - 1
        # operator overloads: name token may be punctuation
        if toks[m].kind != Tok.ID:
            if m >= 1 and toks[m - 1].kind == Tok.ID and \
                    toks[m - 1].text == "operator":
                return None  # operators are never rule targets
            return None
        name = toks[m].text
        if name in KEYWORDS or name in _TYPE_QUALIFIERS:
            return None
        qual = cls
        if m >= 2 and toks[m - 1].text == "::" and \
                toks[m - 2].kind == Tok.ID:
            qual = toks[m - 2].text
        return Function(name, qual, toks[m].line)

    def _ns_var_decl(self, i, end):
        """Statement [i, end) at namespace scope with no parens and
        terminated by ';': maybe a variable definition."""
        toks = self.toks
        texts = [t.text for t in toks[i:end]]
        if not texts:
            return
        if texts[0] in ("using", "typedef", "extern", "friend",
                        "template", "return", "public", "private",
                        "protected"):
            return
        if texts[0] in ("class", "struct", "union", "enum") and \
                len(texts) <= 2:
            return  # forward declaration
        if "(" in texts or "~" in texts or "operator" in texts:
            return  # function-ish (e.g. `T::~T() = default;`)
        if "const" in texts or "constexpr" in texts or \
                "constinit" in texts:
            return
        stop = end
        for k in range(i, end):
            if toks[k].text in ("=", "{"):
                stop = k
                break
        name_idx = None
        for k in range(stop - 1, i - 1, -1):
            if toks[k].kind == Tok.ID:
                name_idx = k
                break
        if name_idx is None or name_idx == i:
            return  # need at least a type token before the name
        name = toks[name_idx].text
        if name in _TYPE_QUALIFIERS or name in KEYWORDS:
            return
        type_text = " ".join(t.text for t in toks[i:name_idx])
        self.tu.ns_vars.append((name, toks[name_idx].line, type_text))

    # ------------------------------------------------------------
    # Function bodies: calls, locks, local statics
    # ------------------------------------------------------------

    _GUARDS = {"lock_guard", "unique_lock", "scoped_lock",
               "shared_lock"}

    def _scan_body(self, fn):
        toks = self.toks
        start, end = fn.body
        i = start
        while i < end:
            t = toks[i]
            if t.kind == Tok.ID and t.text == "static":
                self._local_static(fn, i, end)
                i += 1
                continue
            if t.kind == Tok.ID and t.text in self._GUARDS:
                i = self._lock_guard(fn, i, end)
                continue
            if t.kind == Tok.ID and i + 1 < end and \
                    toks[i + 1].text == "(":
                if t.text == "lock" and i >= 2 and \
                        toks[i - 1].text in (".", "->"):
                    mu = self._receiver_chain(i - 2, start)
                    if mu:
                        # Bare .lock(): held to the end of the
                        # enclosing block, conservatively.
                        fn.locks.append(
                            LockAcq(self._qualify_mutex(fn, mu),
                                    t.line,
                                    self._scope_end_line(i, end),
                                    "lock"))
                if t.text not in KEYWORDS:
                    recv = None
                    if i >= 2 and toks[i - 1].text in (".", "->"):
                        recv = self._receiver_chain(i - 2, start)
                    fn.calls.append(Call(t.text, recv, t.line))
                i += 1
                continue
            i += 1

    def _receiver_chain(self, i, start):
        """Identifier (last link) of the receiver ending at toks[i]."""
        if i >= start and self.toks[i].kind == Tok.ID:
            return self.toks[i].text
        if i >= start and self.toks[i].text == ")":
            return None  # call-chained receiver; unresolvable
        return None

    def _qualify_mutex(self, fn, name):
        if fn.cls:
            cls = self.tu.classes.get(fn.cls)
            if cls and name in cls.mutex_members:
                return "%s::%s" % (fn.cls, name)
        for v, _line, vtype in self.tu.ns_vars:
            if v == name and "mutex" in vtype:
                return "%s::%s" % (self.tu.path, name)
        # Unknown owner: qualify by class anyway (over-approximate).
        if fn.cls:
            return "%s::%s" % (fn.cls, name)
        return "%s::%s" % (self.tu.path, name)

    def _lock_guard(self, fn, i, end):
        """toks[i] is lock_guard/unique_lock/...; record the guarded
        mutex and return the index to resume at."""
        toks = self.toks
        j = i + 1
        if j < end and toks[j].text == "<":
            depth = 1
            j += 1
            while j < end and depth:
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                elif toks[j].text == ">>":
                    depth -= 2
                j += 1
        # optional variable name
        if j < end and toks[j].kind == Tok.ID:
            j += 1
        if j >= end or toks[j].text != "(":
            return i + 1
        close = _match_paren(toks, j)
        # first argument: id chain; take its last id before ',' or ')'
        k = j + 1
        last_id = None
        while k < close - 1 and toks[k].text != ",":
            if toks[k].kind == Tok.ID:
                last_id = toks[k].text
            k += 1
        if last_id:
            fn.locks.append(
                LockAcq(self._qualify_mutex(fn, last_id),
                        toks[i].line,
                        self._scope_end_line(close, end), "guard"))
        return close

    def _scope_end_line(self, i, end):
        """Line of the '}' closing the block enclosing toks[i]
        (i.e. where a guard declared at i is destroyed)."""
        toks = self.toks
        depth = 0
        j = i
        while j < end:
            t = toks[j].text
            if t == "{":
                depth += 1
            elif t == "}":
                depth -= 1
                if depth < 0:
                    return toks[j].line
            j += 1
        return toks[end - 1].line if end > 0 else toks[i].line

    def _local_static(self, fn, i, end):
        """toks[i] is 'static' inside a body."""
        toks = self.toks
        j = i + 1
        texts = []
        while j < end and toks[j].text != ";":
            if toks[j].text == "(":
                j = _match_paren(toks, j)
                continue
            if toks[j].text == "{":
                j = _match_brace(toks, j)
                continue
            texts.append((toks[j].text, toks[j].kind, j))
            j += 1
        decl = [t for t, _k, _j in texts]
        if "const" in decl or "constexpr" in decl:
            return
        # variable name: last id before '=' (or end)
        stop = len(texts)
        for k, (t, _kind, _j) in enumerate(texts):
            if t == "=":
                stop = k
                break
        name = None
        for k in range(stop - 1, -1, -1):
            t, kind, _j = texts[k]
            if kind == Tok.ID and t not in _TYPE_QUALIFIERS:
                name = t
                break
        if name is None:
            return
        # Meyers singleton: next statement is `return <name>;`
        is_singleton = False
        k = j + 1
        if k + 2 < end and toks[k].kind == Tok.ID and \
                toks[k].text == "return" and \
                toks[k + 1].text == name and toks[k + 2].text == ";":
            is_singleton = True
        fn.local_statics.append((name, toks[i].line, is_singleton))
