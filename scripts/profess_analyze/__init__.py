"""profess_analyze -- determinism & hot-path static analyzer.

A stdlib-only multi-pass analyzer for the ProFess C++ tree.  It
grew out of scripts/lint_profess.py (whose line-regex rules it
absorbs) and adds the checks a single-line regex cannot express:

  * a tokenizer (lexer.py) and a per-translation-unit model
    (cppmodel.py): include graph, class/function extents, member
    declarations, virtual methods, namespace-scope variables,
    mutex acquisitions and call sites;
  * determinism rules (rules_determinism.py): unordered-container
    iteration feeding ordered output, pointer-keyed containers,
    wall-clock reads outside the waived telemetry files, mutable
    function-local statics and non-const globals outside common/,
    float accumulation into shared state;
  * hot-path rules (rules_hotpath.py): a call-extent walk from the
    EventQueue / Channel / HybridController hot loops flagging
    heap allocation, std::function, virtual dispatch outside the
    policy boundary, and telemetry branches missing
    PROFESS_UNLIKELY;
  * lock-order extraction (rules_locks.py): the mutex acquisition
    graph across thread_pool / openmetrics / telemetry, failing on
    cycles;
  * the legacy line rules (rules_lint.py).

Waivers live in scripts/lint_waivers.json; every waiver must carry
`reason` and `expires` (ISO date) and must match at least one raw
finding -- expired or stale waivers are themselves errors
(waivers.py).  Findings can be emitted as SARIF 2.1.0 for GitHub
code scanning (sarif.py).

Run it as `python3 scripts/profess_analyze` (the directory is
executable via __main__.py) or `python3 -m profess_analyze` with
scripts/ on PYTHONPATH.  Exit status: 0 clean, 1 findings,
2 usage/waiver errors.
"""

__version__ = "1.0"
