"""Minimal SARIF 2.1.0 writer for GitHub code scanning."""

import json

SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
          "master/Schemata/sarif-schema-2.1.0.json")


def write(path, findings, rules, tool_version):
    """Write `findings` (list of Finding) as one SARIF run.

    @param rules  iterable of Rule (name/description) plus the
                  dynamic rule ids appearing in findings.
    """
    rule_ids = []
    descriptions = {}
    for r in rules:
        if r.name and r.name not in descriptions:
            rule_ids.append(r.name)
            descriptions[r.name] = r.description
    for f in findings:
        if f.rule not in descriptions:
            rule_ids.append(f.rule)
            descriptions[f.rule] = ""

    doc = {
        "$schema": SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "profess_analyze",
                    "informationUri":
                        "scripts/profess_analyze/__init__.py",
                    "version": tool_version,
                    "rules": [{
                        "id": rid,
                        "shortDescription":
                            {"text": descriptions[rid] or rid},
                    } for rid in rule_ids],
                }
            },
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(f.line, 1)},
                    }
                }],
            } for f in findings],
        }],
    }
    with open(path, "w") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")
