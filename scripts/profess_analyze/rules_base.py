"""Finding type, rule registry and the cross-TU program index."""


class Finding:
    """One rule violation at a source line."""

    __slots__ = ("rule", "path", "line", "message", "line_text")

    def __init__(self, rule, path, line, message, line_text=""):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.line_text = line_text

    def render(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)

    def __repr__(self):
        return self.render()


class Rule:
    """Base class.  Subclasses set `name`/`description` and override
    one (or both) hooks."""

    name = ""
    description = ""

    def check_tu(self, tu, ctx):
        """Per-file pass.  @return iterable of Finding."""
        return ()

    def check_program(self, ctx):
        """Whole-program pass after every TU is built."""
        return ()


class Context:
    """Cross-TU index shared by all rules."""

    def __init__(self, repo, tus):
        self.repo = repo
        self.tus = tus                    # path -> TU
        self.classes = {}                 # name -> ClassInfo (merged)
        self.functions_by_qual = {}       # "Cls::fn"/"fn" -> [Function]
        self.functions_by_name = {}       # short name -> [(path, Function)]
        self.virtual_methods = {}         # method -> {class names}
        for tu in tus.values():
            for name, info in tu.classes.items():
                prev = self.classes.get(name)
                if prev is None:
                    self.classes[name] = info
                else:
                    prev.members.update(info.members)
                    prev.member_lines.update(info.member_lines)
                    prev.virtual_methods |= info.virtual_methods
                    prev.mutex_members |= info.mutex_members
                    prev.bases += [b for b in info.bases
                                   if b not in prev.bases]
            for fn in tu.functions:
                self.functions_by_qual.setdefault(
                    fn.qualified, []).append(fn)
                self.functions_by_name.setdefault(
                    fn.name, []).append((tu.path, fn))
        for name, info in self.classes.items():
            for m in info.virtual_methods:
                self.virtual_methods.setdefault(m, set()).add(name)
        # Propagate virtuals down the (single-level) hierarchy so an
        # override called through a derived member still resolves.
        for name, info in self.classes.items():
            for base in info.bases:
                binfo = self.classes.get(base)
                if binfo is None:
                    continue
                for m in binfo.virtual_methods:
                    self.virtual_methods.setdefault(m, set()).add(name)

    def member_type(self, cls_name, member):
        info = self.classes.get(cls_name)
        if info is None:
            return None
        return info.members.get(member)

    def line_text(self, tu, line):
        lines = tu.text.splitlines()
        return lines[line - 1] if 0 < line <= len(lines) else ""
