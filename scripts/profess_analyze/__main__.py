"""CLI: python3 scripts/profess_analyze [paths...] [--sarif OUT].

Exit status: 0 clean, 1 findings, 2 usage or waiver errors.
"""

import argparse
import os
import sys

if __package__ in (None, ""):
    # Executed as `python3 scripts/profess_analyze` -- make the
    # package importable, then re-enter through it.
    sys.path.insert(0, os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    import profess_analyze  # noqa: F401
    __package__ = "profess_analyze"

from . import __version__                       # noqa: E402
from . import engine, sarif                     # noqa: E402
from .waivers import WaiverError                # noqa: E402


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="profess_analyze",
        description="ProFess determinism & hot-path analyzer")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src tests "
                         "bench examples)")
    ap.add_argument("--sarif", metavar="OUT",
                    help="also write findings as SARIF 2.1.0")
    ap.add_argument("--no-waivers", action="store_true",
                    help="report raw findings, ignore "
                         "lint_waivers.json")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    ap.add_argument("--repo", default=None,
                    help="repo root (default: auto-detect from "
                         "this script's location)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in engine.ALL_RULES:
            print("%-18s %s" % (rule.name, rule.description))
        return 0

    repo = args.repo or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))

    try:
        res = engine.analyze(repo, paths=args.paths or None,
                             use_waivers=not args.no_waivers)
    except WaiverError as e:
        print("profess_analyze: waiver error: %s" % e,
              file=sys.stderr)
        return 2

    for f in res.kept:
        print(f.render())

    errors = len(res.kept)
    for w in res.stale_waivers:
        print("profess_analyze: stale waiver (matched nothing): "
              "[%s] %s -- remove it" % (w.rule, w.path),
              file=sys.stderr)
    if res.stale_waivers:
        return 2

    if args.sarif:
        sarif.write(args.sarif, res.kept, engine.ALL_RULES,
                    __version__)

    if errors:
        print("profess_analyze: %d finding(s) (%d waived)"
              % (errors, len(res.waived)), file=sys.stderr)
        return 1
    print("profess_analyze: clean (%d file(s), %d rule(s), "
          "%d waived)" % (len(engine.source_files(
              repo, args.paths or None)), len(engine.ALL_RULES),
              len(res.waived)), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
