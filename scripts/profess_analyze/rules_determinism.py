"""Determinism rules.

The repo-wide invariant these protect: simulation output is
bit-identical for any --jobs N and across machines.  Every rule
targets a construct that can silently break that.

det-unordered-iter   Iteration over std::unordered_map/_set whose
                     loop body feeds an order-sensitive sink
                     (file/stream output, warn/trace records,
                     swap requests).  Collecting into a vector that
                     is std::sort-ed later in the same function is
                     the blessed pattern and is not flagged; neither
                     is pure commutative aggregation (+=, counters,
                     erase).
det-pointer-key      Ordered or hashed containers keyed by pointer
                     values: iteration order then depends on the
                     allocator, i.e. on the run.
det-wallclock        std::chrono / time() / clock_gettime outside
                     common/rng.hh and the waived telemetry-timer
                     files (WALLCLOCK_WAIVED below): wall time must
                     never reach simulation state.
det-mutable-static   Mutable function-local statics and non-const
                     namespace-scope variables outside src/common/:
                     hidden cross-run (and cross-worker) state.
                     Meyers singletons (static local immediately
                     returned by reference) are the documented
                     process-global pattern and are exempt.
det-float-accum      += / -= on float/double members of classes
                     that also hold a mutex or atomic (i.e. state
                     shared across worker boundaries), and on
                     float/double globals: accumulation order would
                     change the rounding, so per-run results would
                     depend on scheduling.
"""

from .lexer import Tok
from .rules_base import Finding, Rule

#: Files allowed to read wall clocks, with the reason on record.
#: These never feed simulation state -- the analyzer's waiver file
#: is for temporary exceptions; this table is architecture.
WALLCLOCK_WAIVED = {
    "src/common/telemetry.hh":
        "ScopedTimer/TimerSlot host-side wall profiling (DESIGN 4d)",
    "src/common/telemetry.cc":
        "manifest wall-clock timestamps and RSS accounting",
    "src/common/thread_pool.cc":
        "idle-worker condition_variable timeout; scheduling only",
    "src/sim/run_telemetry.hh":
        "run manifest wall-clock span",
    "src/sim/run_telemetry.cc":
        "run manifest wall-clock span",
    "src/sim/parallel_runner.cc":
        "per-job progress timing on stderr",
}

#: Directory prefixes whose wall-clock reads are measurement
#: harnesses by definition (never simulation state).
WALLCLOCK_WAIVED_PREFIXES = ("bench/", "tests/", "examples/")

_UNORDERED = ("unordered_map", "unordered_set")

#: Calls that make iteration order observable.
_SINK_CALLS = {
    "fprintf", "printf", "vfprintf", "fputs", "fputc", "fwrite",
    "puts", "putc", "sprintf", "snprintf",
    "warn", "info", "fatal", "record", "emit", "requestSwap",
    "write", "dump", "dumpJson", "dumpCsv", "flushJsonl",
}

#: Stream-ish identifiers: `x << ...` with x in this set is output.
_STREAMY = {"os", "out", "oss", "ss", "cout", "cerr", "clog",
            "stream", "f", "file"}

_CLOCK_IDS = {"steady_clock", "system_clock",
              "high_resolution_clock", "gettimeofday",
              "clock_gettime", "timespec_get", "localtime",
              "gmtime", "mktime"}


def _unordered_names(tu, ctx):
    """All identifiers in this TU declared with an unordered type:
    class members (merged program-wide) plus TU-local declarations
    found by token scan."""
    names = set()
    for info in ctx.classes.values():
        for member, mtype in info.members.items():
            if any(u in mtype for u in _UNORDERED):
                names.add(member)
    for name, _line, vtype in tu.ns_vars:
        if any(u in vtype for u in _UNORDERED):
            names.add(name)
    # local declarations: `unordered_map < ... > name`
    toks = tu.tokens
    for i, t in enumerate(toks):
        if t.kind == Tok.ID and t.text in _UNORDERED:
            j = i + 1
            if j < len(toks) and toks[j].text == "<":
                depth = 1
                j += 1
                while j < len(toks) and depth:
                    if toks[j].text == "<":
                        depth += 1
                    elif toks[j].text == ">":
                        depth -= 1
                    elif toks[j].text == ">>":
                        depth -= 2
                    j += 1
                if j < len(toks) and toks[j].kind == Tok.ID:
                    names.add(toks[j].text)
    return names


def _stmt_extent(toks, i, end):
    """Extent [i, j) of the statement starting at i: a braced block
    or a single ';'-terminated statement."""
    if i < end and toks[i].text == "{":
        depth = 0
        j = i
        while j < end:
            if toks[j].text == "{":
                depth += 1
            elif toks[j].text == "}":
                depth -= 1
                if depth == 0:
                    return i, j + 1
            j += 1
        return i, end
    j = i
    pdepth = 0
    while j < end:
        t = toks[j].text
        if t == "(":
            pdepth += 1
        elif t == ")":
            pdepth -= 1
        elif t == ";" and pdepth == 0:
            return i, j + 1
        elif t == "{":
            # e.g. `for (...) if (...) { ... }`
            depth = 0
            while j < end:
                if toks[j].text == "{":
                    depth += 1
                elif toks[j].text == "}":
                    depth -= 1
                    if depth == 0:
                        return i, j + 1
                j += 1
            return i, end
        j += 1
    return i, end


class UnorderedIterRule(Rule):
    name = "det-unordered-iter"
    description = ("unordered container iteration must not feed "
                   "order-sensitive output")

    def check_tu(self, tu, ctx):
        toks = tu.tokens
        n = len(toks)
        unames = _unordered_names(tu, ctx)
        if not unames:
            return
        for fn in tu.functions:
            start, end = fn.body
            i = start
            while i < end:
                t = toks[i]
                if t.kind == Tok.ID and t.text == "for" and \
                        i + 1 < end and toks[i + 1].text == "(":
                    hit = self._check_loop(tu, toks, i, start, end,
                                           unames)
                    if hit is not None:
                        yield hit
                i += 1

    def _loop_head(self, toks, i, end):
        """toks[i] is 'for'; @return (container or None, head_end)."""
        depth = 0
        j = i + 1
        colon = None
        head_end = end
        while j < end:
            t = toks[j].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0:
                    head_end = j + 1
                    break
            elif t == ":" and depth == 1 and colon is None:
                colon = j
            j += 1
        container = None
        if colon is not None:
            # range expression: last identifier before ')'
            for k in range(head_end - 2, colon, -1):
                if toks[k].kind == Tok.ID:
                    container = toks[k].text
                    break
        else:
            # iterator loop: look for `X.begin(` / `X.cbegin(`
            for k in range(i, head_end):
                if toks[k].kind == Tok.ID and \
                        toks[k].text in ("begin", "cbegin") and \
                        k >= 2 and toks[k - 1].text in (".", "->") \
                        and toks[k - 2].kind == Tok.ID:
                    container = toks[k - 2].text
                    break
        return container, head_end

    def _check_loop(self, tu, toks, i, fn_start, fn_end, unames):
        container, head_end = self._loop_head(toks, i, fn_end)
        if container is None or container not in unames:
            return None
        body_start, body_end = _stmt_extent(toks, head_end, fn_end)
        sink = self._find_sink(toks, body_start, body_end, fn_end)
        if sink is None:
            return None
        line, what = sink
        return Finding(
            self.name, tu.path, line,
            "iterating unordered container '%s' feeds "
            "order-sensitive sink %s; iterate a sorted copy (or "
            "collect + std::sort first)" % (container, what),
            "" )

    def _find_sink(self, toks, start, end, fn_end):
        for j in range(start, end):
            t = toks[j]
            if t.kind == Tok.ID and t.text in _SINK_CALLS and \
                    j + 1 < end and toks[j + 1].text == "(":
                return t.line, "'%s()'" % t.text
            if t.kind == Tok.PUNCT and t.text == "<<":
                if j >= 1 and toks[j - 1].kind == Tok.ID and \
                        toks[j - 1].text in _STREAMY:
                    return t.line, "stream output"
                if j + 1 < end and toks[j + 1].kind == Tok.STR:
                    return t.line, "stream output"
            if t.kind == Tok.ID and \
                    t.text in ("push_back", "emplace_back") and \
                    j >= 2 and toks[j - 1].text in (".", "->") and \
                    toks[j - 2].kind == Tok.ID:
                target = toks[j - 2].text
                if not self._sorted_later(toks, end, fn_end, target):
                    return t.line, ("unsorted append to '%s'"
                                    % target)
        return None

    def _sorted_later(self, toks, from_idx, fn_end, target):
        """True if `sort(target.begin()` (std::sort/stable_sort)
        appears in [from_idx, fn_end)."""
        for j in range(from_idx, fn_end - 3):
            t = toks[j]
            if t.kind == Tok.ID and t.text in ("sort",
                                               "stable_sort"):
                k = j + 1
                if k < fn_end and toks[k].text == "(" and \
                        k + 1 < fn_end and \
                        toks[k + 1].kind == Tok.ID and \
                        toks[k + 1].text == target:
                    return True
        return False


class PointerKeyRule(Rule):
    name = "det-pointer-key"
    description = "containers must not be keyed by pointer values"

    _CONTAINERS = {"map", "set", "multimap", "multiset",
                   "unordered_map", "unordered_set", "hash"}

    def check_tu(self, tu, ctx):
        toks = tu.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != Tok.ID or t.text not in self._CONTAINERS:
                continue
            if i + 1 >= n or toks[i + 1].text != "<":
                continue
            # first template argument at depth 1
            depth = 1
            j = i + 2
            arg = []
            while j < n and depth:
                tj = toks[j].text
                if tj == "<":
                    depth += 1
                elif tj in (">", ">>"):
                    depth -= 2 if tj == ">>" else 1
                    if depth <= 0:
                        break
                elif tj == "," and depth == 1:
                    break
                arg.append(tj)
                j += 1
            if arg and arg[-1] == "*":
                yield Finding(
                    self.name, tu.path, t.line,
                    "std::%s keyed by pointer '%s': iteration/"
                    "hash order depends on allocation addresses"
                    % (t.text, " ".join(arg)), "")


class WallClockRule(Rule):
    name = "det-wallclock"
    description = ("wall-clock reads only in common/rng.hh and the "
                   "waived telemetry timers")

    def check_tu(self, tu, ctx):
        path = tu.path
        if path == "src/common/rng.hh":
            return
        if path in WALLCLOCK_WAIVED:
            return
        if path.startswith(WALLCLOCK_WAIVED_PREFIXES):
            return
        toks = tu.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != Tok.ID:
                continue
            if t.text == "chrono" and i >= 1 and \
                    toks[i - 1].text == "::":
                yield Finding(
                    self.name, path, t.line,
                    "std::chrono wall-clock use outside the waived "
                    "telemetry timers (see WALLCLOCK_WAIVED)", "")
            elif t.text in _CLOCK_IDS:
                yield Finding(
                    self.name, path, t.line,
                    "'%s' outside the waived telemetry timers"
                    % t.text, "")
            elif t.text in ("time", "clock") and i + 1 < n and \
                    toks[i + 1].text == "(" and \
                    (i == 0 or toks[i - 1].text not in
                     (".", "->", "::")):
                yield Finding(
                    self.name, path, t.line,
                    "'%s()' wall-clock call outside the waived "
                    "telemetry timers" % t.text, "")


class MutableStaticRule(Rule):
    name = "det-mutable-static"
    description = ("no mutable local statics or non-const globals "
                   "outside src/common/")

    #: Synchronization primitives carry no program-visible state;
    #: a file-scope mutex is coordination, not hidden data.
    _SYNC_TYPES = ("mutex", "condition_variable", "once_flag",
                   "atomic_flag")

    def check_tu(self, tu, ctx):
        path = tu.path
        if not path.startswith("src/") or \
                path.startswith("src/common/"):
            return
        for name, line, vtype in tu.ns_vars:
            if any(s in vtype for s in self._SYNC_TYPES):
                continue
            yield Finding(
                self.name, path, line,
                "non-const namespace-scope variable '%s' (%s): "
                "hidden global state outside src/common/"
                % (name, vtype or "?"), "")
        for fn in tu.functions:
            for name, line, is_singleton in fn.local_statics:
                if is_singleton:
                    continue  # documented Meyers-singleton pattern
                yield Finding(
                    self.name, path, line,
                    "mutable function-local static '%s' in %s(): "
                    "cross-run state; use a member or the "
                    "singleton pattern" % (name, fn.qualified), "")


class FloatAccumRule(Rule):
    name = "det-float-accum"
    description = ("no float accumulation into state shared across "
                   "worker boundaries")

    def _shared_classes(self, ctx):
        shared = {}
        for name, info in ctx.classes.items():
            for mtype in info.members.values():
                if "mutex" in mtype or "atomic" in mtype:
                    shared[name] = info
                    break
        return shared

    def check_program(self, ctx):
        shared = self._shared_classes(ctx)
        float_globals = {}
        for tu in ctx.tus.values():
            for name, line, vtype in tu.ns_vars:
                if "double" in vtype.split() or \
                        "float" in vtype.split():
                    float_globals[name] = (tu.path, line)
        for tu in ctx.tus.values():
            toks = tu.tokens
            for fn in tu.functions:
                info = shared.get(fn.cls) if fn.cls else None
                start, end = fn.body
                for j in range(start, end):
                    t = toks[j]
                    if t.kind != Tok.PUNCT or \
                            t.text not in ("+=", "-="):
                        continue
                    if j == start or toks[j - 1].kind != Tok.ID:
                        continue
                    target = toks[j - 1].text
                    if info is not None:
                        mtype = info.members.get(target, "")
                        words = mtype.split()
                        if "double" in words or "float" in words:
                            yield Finding(
                                self.name, tu.path, t.line,
                                "float accumulation '%s %s' into "
                                "member of %s, which holds "
                                "cross-worker shared state: "
                                "summation order would depend on "
                                "scheduling"
                                % (target, t.text, fn.cls), "")
                            continue
                    if target in float_globals:
                        yield Finding(
                            self.name, tu.path, t.line,
                            "float accumulation '%s %s' into a "
                            "global: summation order would depend "
                            "on scheduling" % (target, t.text), "")


RULES = [UnorderedIterRule(), PointerKeyRule(), WallClockRule(),
         MutableStaticRule(), FloatAccumRule()]
