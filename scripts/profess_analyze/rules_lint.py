"""Legacy line rules absorbed from scripts/lint_profess.py.

Rule names are unchanged (hotpath-heap, rng, stat-names,
include-hygiene, include-order) so existing waivers keep matching.
See the original module docstring for the rule rationale; the
checks are byte-for-byte the same semantics, re-hosted on the
analyzer's Finding/waiver machinery.
"""

import os
import re

from .lexer import strip_comments
from .rules_base import Finding, Rule

HOT_PATH_HEADERS = [
    "src/common/event.hh",
    "src/common/pool.hh",
    "src/common/inline_function.hh",
    "src/core/mdm.hh",
]

RNG_HOME = "src/common/rng.hh"

STAT_CALL_RE = re.compile(
    r'add(?:Counter|Probe|Set|Histogram)\(\s*(?:prefix\s*\+\s*)?'
    r'"([^"]*)"')
STAT_LEAF_RE = re.compile(r"^\.?[a-z][a-z0-9_]*(\.[a-z0-9_]+)*\.?$")

BANNED_HEAP_RE = re.compile(
    r"std::function"
    r"|(?<!:)\bnew\b(?!\s*\()"  # plain new; "::new (addr)" is ok
    r"|\bmake_unique\b|\bmake_shared\b|\bmalloc\s*\(")

BANNED_RNG_RE = re.compile(
    r"\b(?:s?rand)\s*\("
    r"|std::mt19937|std::minstd_rand|random_device"
    r"|default_random_engine")

GUARD_RE = re.compile(r"^#ifndef\s+(\w+)\s*$", re.M)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+["<]([^">]+)[">]')


class HotPathHeapRule(Rule):
    name = "hotpath-heap"
    description = ("Hot-path headers must not introduce "
                   "std::function or heap allocation")

    def check_tu(self, tu, ctx):
        if tu.path not in HOT_PATH_HEADERS:
            return
        code = strip_comments(tu.text)
        for lineno, line in enumerate(code.splitlines(), 1):
            if line.lstrip().startswith("#"):
                continue
            m = BANNED_HEAP_RE.search(line)
            if m:
                yield Finding(self.name, tu.path, lineno,
                              "'%s' in hot-path header" % m.group(0),
                              line)


class RngRule(Rule):
    name = "rng"
    description = ("All randomness flows through common/rng.hh "
                   "(seeded PCG32)")

    def check_tu(self, tu, ctx):
        if tu.path == RNG_HOME:
            return
        code = strip_comments(tu.text)
        for lineno, line in enumerate(code.splitlines(), 1):
            m = BANNED_RNG_RE.search(line)
            if m:
                yield Finding(
                    self.name, tu.path, lineno,
                    "'%s' outside %s (use common/rng.hh)"
                    % (m.group(0).strip(), RNG_HOME), line)


class StatNamesRule(Rule):
    name = "stat-names"
    description = ("Registered stat names are dotted lower_snake "
                   "and unique per file")

    def check_tu(self, tu, ctx):
        code = strip_comments(tu.text)
        lines = code.splitlines()
        seen = {}
        for m in STAT_CALL_RE.finditer(code):
            leaf = m.group(1)
            lineno = code.count("\n", 0, m.start()) + 1
            line = lines[lineno - 1] if lineno <= len(lines) else ""
            if not STAT_LEAF_RE.match(leaf):
                yield Finding(self.name, tu.path, lineno,
                              "stat name '%s' is not a dotted "
                              "lower_snake identifier" % leaf, line)
            if leaf in seen:
                yield Finding(self.name, tu.path, lineno,
                              "stat leaf '%s' already registered at "
                              "line %d" % (leaf, seen[leaf]), line)
            else:
                seen[leaf] = lineno


class IncludeHygieneRule(Rule):
    name = "include-hygiene"
    description = ("Header guards, own-header-first, no '../' or "
                   "<bits/stdc++.h>")

    def check_tu(self, tu, ctx):
        raw = tu.text
        path = tu.path
        for lineno, line in enumerate(raw.splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = m.group(1)
            if target.startswith("../"):
                yield Finding(self.name, path, lineno,
                              "relative '../' include", line)
            if target == "bits/stdc++.h":
                yield Finding(self.name, path, lineno,
                              "<bits/stdc++.h> is non-standard",
                              line)

        if path.startswith("src/") and path.endswith(".hh"):
            rel = path[len("src/"):-len(".hh")]
            want = "PROFESS_" + rel.replace("/", "_").upper() + "_HH"
            m = GUARD_RE.search(raw)
            if not m:
                yield Finding(self.name, path, 1,
                              "missing header guard (expected %s)"
                              % want)
            elif m.group(1) != want:
                lineno = raw.count("\n", 0, m.start()) + 1
                yield Finding(self.name, path, lineno,
                              "header guard %s; expected %s"
                              % (m.group(1), want), m.group(0))

        if path.startswith("src/") and path.endswith(".cc"):
            own = path[len("src/"):-len(".cc")] + ".hh"
            if os.path.exists(os.path.join(ctx.repo, "src", own)):
                for lineno, line in enumerate(raw.splitlines(), 1):
                    m = INCLUDE_RE.match(line)
                    if not m:
                        continue
                    if m.group(1) != own:
                        yield Finding(
                            self.name, path, lineno,
                            "own header \"%s\" must be the first "
                            "include" % own, line)
                    break


class IncludeOrderRule(Rule):
    name = "include-order"
    description = ("Include blocks are sorted and do not mix "
                   "<angle> and \"quote\" styles")

    def check_tu(self, tu, ctx):
        raw = tu.text
        path = tu.path
        own = None
        if path.startswith("src/") and path.endswith(".cc"):
            candidate = path[len("src/"):-len(".cc")] + ".hh"
            if os.path.exists(os.path.join(ctx.repo, "src",
                                           candidate)):
                own = candidate

        blocks = []
        current = []
        for lineno, line in enumerate(raw.splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if m:
                style = "<" if line.strip().endswith(">") else '"'
                current.append((lineno, style, m.group(1), line))
            elif current:
                blocks.append(current)
                current = []
        if current:
            blocks.append(current)

        for block in blocks:
            if (own is not None and len(block) == 1
                    and block[0][2] == own):
                continue
            styles = {style for _, style, _, _ in block}
            if len(styles) > 1:
                lineno, _, _, line = block[0]
                yield Finding(self.name, path, lineno,
                              "include block mixes <angle> and "
                              "\"quote\" styles; split into "
                              "separate blocks", line)
            targets = [t for _, _, t, _ in block]
            if targets != sorted(targets):
                for i in range(1, len(block)):
                    if block[i][2] < block[i - 1][2]:
                        lineno, _, target, line = block[i]
                        yield Finding(
                            self.name, path, lineno,
                            "'%s' breaks case-sensitive sort "
                            "order (after '%s')"
                            % (target, block[i - 1][2]), line)


RULES = [HotPathHeapRule(), RngRule(), StatNamesRule(),
         IncludeHygieneRule(), IncludeOrderRule()]
