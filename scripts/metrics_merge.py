#!/usr/bin/env python3
"""Merge per-run metric shards into one OpenMetrics exposition.

Stdlib-only port of the C++ merge path (MetricsCollector::mergeShards
-> telemetry::writeOpenMetrics): reads every ``*.shard`` file under a
shard directory (``<exposition>.shards/``) and writes the combined
exposition, byte-for-byte identical to the file the simulator itself
produces.  CI diffs the two outputs (``cmp``) to pin the format.

Byte fidelity rests on two facts:

* shard scalar/sum values were printed by C ``%.17g``, which
  round-trips IEEE binary64 exactly, so the merged exposition can
  emit the shard's token verbatim -- re-parsing and re-printing in
  either language reproduces it;
* histogram ``le`` edges are computed (``width * (i+1)``) and
  printed with ``%.17g``; CPython's ``%`` formatting is correctly
  rounded like glibc's, so both render the same bytes.

Usage: metrics_merge.py SHARD_DIR [-o OUT]
"""

import argparse
import os
import sys


def die(msg):
    sys.stderr.write("metrics_merge: %s\n" % msg)
    sys.exit(1)


class Scalar:
    __slots__ = ("name", "is_counter", "token")

    def __init__(self, name, is_counter, token):
        self.name = name
        self.is_counter = is_counter
        self.token = token  # verbatim %.17g text from the shard


class Hist:
    __slots__ = ("name", "width", "underflow", "count", "sum_token",
                 "buckets")

    def __init__(self, name, width, underflow, count, sum_token,
                 buckets):
        self.name = name
        self.width = width
        self.underflow = underflow
        self.count = count
        self.sum_token = sum_token
        self.buckets = buckets


class Snapshot:
    __slots__ = ("run", "scalars", "hists")

    def __init__(self):
        self.run = None
        self.scalars = []
        self.hists = []


def parse_shard(path):
    snap = Snapshot()
    have_end = False
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[0] != "profess-shard 1":
        die("%s:1: not a profess-shard v1 file" % path)
    for lineno, line in enumerate(lines[1:], start=2):
        if have_end:
            die("%s:%d: content after 'end'" % (path, lineno))
        if line.startswith("run "):
            snap.run = line[4:]
            continue
        if line == "end":
            have_end = True
            continue
        toks = line.split()
        if toks and toks[0] == "scalar":
            if len(toks) != 4 or toks[2] not in ("c", "g"):
                die("%s:%d: malformed scalar record" % (path, lineno))
            snap.scalars.append(
                Scalar(toks[1], toks[2] == "c", toks[3]))
        elif toks and toks[0] == "hist":
            if len(toks) < 7:
                die("%s:%d: malformed hist record" % (path, lineno))
            n = int(toks[6])
            if len(toks) != 7 + n:
                die("%s:%d: hist record truncated" % (path, lineno))
            snap.hists.append(
                Hist(toks[1], float(toks[2]), int(toks[3]),
                     int(toks[4]), toks[5],
                     [int(b) for b in toks[7:]]))
        else:
            die("%s:%d: unknown shard record" % (path, lineno))
    if snap.run is None or not have_end:
        die("%s: truncated metrics shard" % path)
    return snap


def is_instance_segment(seg, prefix):
    """Return the digits of '<prefix><digits>' or None."""
    if len(seg) <= len(prefix) or not seg.startswith(prefix):
        return None
    digits = seg[len(prefix):]
    return digits if digits.isdigit() else None


def map_dotted_name(dotted, histogram):
    """Port of telemetry::mapDottedName: (family, labels)."""
    segs = dotted.split(".")
    if histogram and len(segs) == 5 and segs[0] == "latency":
        prog = is_instance_segment(segs[1], "p")
        if prog is not None:
            return "profess_latency", [("program", prog),
                                       ("tier", segs[2]),
                                       ("kind", segs[3]),
                                       ("phase", segs[4])]
    labels = []
    joined = []
    for seg in segs:
        for prefix, label in (("ch", "channel"), ("core", "core"),
                              ("p", "program")):
            digits = is_instance_segment(seg, prefix)
            if digits is not None:
                labels.append((label, digits))
                break
        else:
            joined.append(seg)
    return "profess_" + "_".join(joined), labels


def escape_label_value(s):
    return (s.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def render_labels(labels, run, le=None):
    parts = ["%s=\"%s\"" % (k, escape_label_value(v))
             for k, v in labels]
    parts.append("run=\"%s\"" % escape_label_value(run))
    if le is not None:
        parts.append("le=\"%s\"" % le)
    return "{" + ",".join(parts) + "}"


def write_exposition(out, snaps):
    families = {}  # name -> [type, scalar samples, hist samples]
    for snap in snaps:
        for s in snap.scalars:
            fam_name, labels = map_dotted_name(s.name, False)
            kind = "counter" if s.is_counter else "gauge"
            fam = families.setdefault(fam_name, [kind, [], []])
            if fam[0] != kind:
                die("family '%s' mixes %s and %s samples"
                    % (fam_name, fam[0], kind))
            fam[1].append((snap.run, s.name, labels, s))
        for h in snap.hists:
            fam_name, labels = map_dotted_name(h.name, True)
            fam = families.setdefault(fam_name, ["histogram", [], []])
            if fam[0] != "histogram":
                die("family '%s' mixes %s and histogram samples"
                    % (fam_name, fam[0]))
            fam[2].append((snap.run, h.name, labels, h))

    for name in sorted(families):
        kind, scalars, hists = families[name]
        out.write("# TYPE %s %s\n" % (name, kind))
        scalars.sort(key=lambda t: (t[0], t[1]))
        hists.sort(key=lambda t: (t[0], t[1]))
        suffix = "_total" if kind == "counter" else ""
        for run, _dotted, labels, s in scalars:
            out.write("%s%s%s %s\n"
                      % (name, suffix, render_labels(labels, run),
                         s.token))
        for run, _dotted, labels, h in hists:
            # Cumulative buckets: underflow (x < 0) falls in every
            # bucket; the last stored bucket is the overflow count
            # and only contributes to +Inf.
            cum = h.underflow
            for i in range(len(h.buckets) - 1):
                cum += h.buckets[i]
                le = "%.17g" % (h.width * (i + 1))
                out.write("%s_bucket%s %d\n"
                          % (name, render_labels(labels, run, le),
                             cum))
            out.write("%s_bucket%s %d\n"
                      % (name, render_labels(labels, run, "+Inf"),
                         h.count))
            out.write("%s_count%s %d\n"
                      % (name, render_labels(labels, run), h.count))
            out.write("%s_sum%s %s\n"
                      % (name, render_labels(labels, run),
                         h.sum_token))
    out.write("# EOF\n")


def main():
    ap = argparse.ArgumentParser(
        description="Merge per-run metric shards into one "
                    "OpenMetrics exposition.")
    ap.add_argument("shard_dir",
                    help="shard directory (<exposition>.shards/)")
    ap.add_argument("-o", "--output",
                    help="output file (default: stdout)")
    args = ap.parse_args()

    try:
        names = sorted(n for n in os.listdir(args.shard_dir)
                       if n.endswith(".shard"))
    except OSError as e:
        die("cannot list '%s': %s" % (args.shard_dir, e))
    if not names:
        die("no *.shard files in '%s'" % args.shard_dir)

    snaps = [parse_shard(os.path.join(args.shard_dir, n))
             for n in names]
    snaps.sort(key=lambda s: s.run)

    if args.output:
        with open(args.output, "w", encoding="utf-8",
                  newline="") as out:
            write_exposition(out, snaps)
    else:
        write_exposition(sys.stdout, snaps)


if __name__ == "__main__":
    main()
