#!/usr/bin/env python3
"""Compatibility wrapper: the ProFess linter is now the
`profess_analyze` package (scripts/profess_analyze/), which absorbs
the original line rules (hotpath-heap, rng, stat-names,
include-hygiene, include-order) unchanged and adds the determinism,
hot-path reachability and lock-order passes.  This shim keeps
`python3 scripts/lint_profess.py` (ci.sh, muscle memory, older
docs) working with identical semantics and exit codes.

Run `python3 scripts/profess_analyze --list-rules` for the catalog.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from profess_analyze.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
