#!/usr/bin/env python3
"""Domain-specific lint for the ProFess repository.

Static rules that encode repo invariants generic tools cannot know:

  hotpath-heap   Hot-path headers (the event loop, object pools, the
                 inline-callback vehicle, and MDM's decision path)
                 must not introduce std::function or heap
                 allocation.  Placement new (``::new (addr)``) is
                 allowed; plain ``new``, make_unique/make_shared and
                 malloc are not.

  rng            All randomness flows through common/rng.hh (PCG32,
                 explicitly seeded) so runs stay reproducible.
                 rand()/srand(), std::mt19937, random_device and
                 default_random_engine are banned elsewhere.

  stat-names     Statistic leaf names passed to
                 StatRegistry::addCounter/addProbe/addSet must be
                 dotted lower_snake identifiers, and a file must not
                 register the same leaf twice (copy-paste guard; the
                 registry itself panics on full-name duplicates at
                 runtime).

  include-hygiene
                 Header guards follow PROFESS_<DIR>_<FILE>_HH; a .cc
                 file includes its own header first; no "../"
                 includes; no <bits/stdc++.h>.

  include-order  Within each contiguous #include block (blocks are
                 separated by blank lines or other code, matching
                 .clang-format's IncludeBlocks: Preserve), targets
                 must be case-sensitively sorted and a block must
                 not mix <angle> and "quote" styles: system headers
                 and project headers live in separate blocks.  The
                 own-header include opening a .cc file is its own
                 block and is exempt.

Waivers live in scripts/lint_waivers.json as a list of
{"rule", "path", "pattern", "reason"} objects; a finding is waived
when rule and path match exactly and the optional pattern regex
matches the offending line.  Exit status: 0 clean, 1 findings.

Stdlib-only; run from anywhere: paths resolve against the repo root.
"""

import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HOT_PATH_HEADERS = [
    "src/common/event.hh",
    "src/common/pool.hh",
    "src/common/inline_function.hh",
    "src/core/mdm.hh",
]

RNG_HOME = "src/common/rng.hh"

SOURCE_DIRS = ["src", "tests", "bench", "examples"]

STAT_CALL_RE = re.compile(
    r'add(?:Counter|Probe|Set)\(\s*(?:prefix\s*\+\s*)?"([^"]*)"')
# Leading dot: appended to a prefix.  Trailing dot: a runtime
# suffix is concatenated after the literal.
STAT_LEAF_RE = re.compile(r"^\.?[a-z][a-z0-9_]*(\.[a-z0-9_]+)*\.?$")

BANNED_HEAP_RE = re.compile(
    r"std::function"
    r"|(?<!:)\bnew\b(?!\s*\()"  # plain new; "::new (addr)" is ok
    r"|\bmake_unique\b|\bmake_shared\b|\bmalloc\s*\(")

BANNED_RNG_RE = re.compile(
    r"\b(?:s?rand)\s*\("
    r"|std::mt19937|std::minstd_rand|random_device"
    r"|default_random_engine")

GUARD_RE = re.compile(r"^#ifndef\s+(\w+)\s*$", re.M)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+["<]([^">]+)[">]')


def strip_comments(text):
    """Remove // and /* */ comments, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append(text[i:j + 1])
            i = j + 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def load_waivers():
    path = os.path.join(REPO, "scripts", "lint_waivers.json")
    if not os.path.exists(path):
        return []
    with open(path) as f:
        waivers = json.load(f)
    for w in waivers:
        for key in ("rule", "path", "reason"):
            if key not in w:
                sys.exit("lint_waivers.json: waiver missing '%s': %r"
                         % (key, w))
    return waivers


def waived(waivers, rule, path, line_text):
    for w in waivers:
        if w["rule"] != rule or w["path"] != path:
            continue
        if "pattern" in w and not re.search(w["pattern"], line_text):
            continue
        return True
    return False


class Linter:
    def __init__(self):
        self.waivers = load_waivers()
        self.findings = []

    def report(self, rule, path, lineno, message, line_text=""):
        if waived(self.waivers, rule, path, line_text):
            return
        self.findings.append(
            "%s:%d: [%s] %s" % (path, lineno, rule, message))

    # --- rule: hotpath-heap -------------------------------------
    def check_hot_path(self, path, code):
        for lineno, line in enumerate(code.splitlines(), 1):
            if line.lstrip().startswith("#"):
                continue  # preprocessor (e.g. #include <new>)
            m = BANNED_HEAP_RE.search(line)
            if m:
                self.report("hotpath-heap", path, lineno,
                            "'%s' in hot-path header" % m.group(0),
                            line)

    # --- rule: rng ----------------------------------------------
    def check_rng(self, path, code):
        if path == RNG_HOME:
            return
        for lineno, line in enumerate(code.splitlines(), 1):
            m = BANNED_RNG_RE.search(line)
            if m:
                self.report("rng", path, lineno,
                            "'%s' outside %s (use common/rng.hh)"
                            % (m.group(0).strip(), RNG_HOME), line)

    # --- rule: stat-names ---------------------------------------
    def check_stat_names(self, path, code):
        seen = {}
        for m in STAT_CALL_RE.finditer(code):
            leaf = m.group(1)
            lineno = code.count("\n", 0, m.start()) + 1
            line = code.splitlines()[lineno - 1]
            if not STAT_LEAF_RE.match(leaf):
                self.report("stat-names", path, lineno,
                            "stat name '%s' is not a dotted "
                            "lower_snake identifier" % leaf, line)
            if leaf in seen:
                self.report("stat-names", path, lineno,
                            "stat leaf '%s' already registered at "
                            "line %d" % (leaf, seen[leaf]), line)
            else:
                seen[leaf] = lineno

    # --- rule: include-hygiene ----------------------------------
    def check_includes(self, path, raw):
        for lineno, line in enumerate(raw.splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = m.group(1)
            if target.startswith("../"):
                self.report("include-hygiene", path, lineno,
                            "relative '../' include", line)
            if target == "bits/stdc++.h":
                self.report("include-hygiene", path, lineno,
                            "<bits/stdc++.h> is non-standard", line)

        if path.startswith("src/") and path.endswith(".hh"):
            rel = path[len("src/"):-len(".hh")]
            want = "PROFESS_" + rel.replace("/", "_").upper() + "_HH"
            m = GUARD_RE.search(raw)
            if not m:
                self.report("include-hygiene", path, 1,
                            "missing header guard (expected %s)"
                            % want)
            elif m.group(1) != want:
                lineno = raw.count("\n", 0, m.start()) + 1
                self.report("include-hygiene", path, lineno,
                            "header guard %s; expected %s"
                            % (m.group(1), want), m.group(0))

        if path.startswith("src/") and path.endswith(".cc"):
            own = path[len("src/"):-len(".cc")] + ".hh"
            if os.path.exists(os.path.join(REPO, "src", own)):
                for lineno, line in enumerate(raw.splitlines(), 1):
                    m = INCLUDE_RE.match(line)
                    if not m:
                        continue
                    if m.group(1) != own:
                        self.report(
                            "include-hygiene", path, lineno,
                            "own header \"%s\" must be the first "
                            "include" % own, line)
                    break

    # --- rule: include-order ------------------------------------
    def check_include_order(self, path, raw):
        own = None
        if path.startswith("src/") and path.endswith(".cc"):
            candidate = path[len("src/"):-len(".cc")] + ".hh"
            if os.path.exists(os.path.join(REPO, "src", candidate)):
                own = candidate

        blocks = []  # list of [(lineno, style, target, line)]
        current = []
        for lineno, line in enumerate(raw.splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if m:
                style = "<" if line.lstrip().rstrip().endswith(">") \
                    else '"'
                current.append((lineno, style, m.group(1), line))
            elif current:
                blocks.append(current)
                current = []
        if current:
            blocks.append(current)

        for block in blocks:
            # The own-header block of a .cc is exempt (it sorts
            # before nothing: include-hygiene already pins it
            # first).
            if (own is not None and len(block) == 1
                    and block[0][2] == own):
                continue
            styles = {style for _, style, _, _ in block}
            if len(styles) > 1:
                lineno, _, _, line = block[0]
                self.report("include-order", path, lineno,
                            "include block mixes <angle> and "
                            "\"quote\" styles; split into separate "
                            "blocks", line)
            targets = [t for _, _, t, _ in block]
            if targets != sorted(targets):
                for i in range(1, len(block)):
                    if block[i][2] < block[i - 1][2]:
                        lineno, _, target, line = block[i]
                        self.report(
                            "include-order", path, lineno,
                            "'%s' breaks case-sensitive sort "
                            "order (after '%s')"
                            % (target, block[i - 1][2]), line)

    def run(self):
        for top in SOURCE_DIRS:
            for root, _, files in os.walk(os.path.join(REPO, top)):
                for name in sorted(files):
                    if not name.endswith((".cc", ".hh")):
                        continue
                    full = os.path.join(root, name)
                    path = os.path.relpath(full, REPO)
                    with open(full, encoding="utf-8") as f:
                        raw = f.read()
                    code = strip_comments(raw)
                    if path in HOT_PATH_HEADERS:
                        self.check_hot_path(path, code)
                    self.check_rng(path, code)
                    self.check_stat_names(path, code)
                    self.check_includes(path, raw)
                    self.check_include_order(path, raw)
        return self.findings


def main():
    findings = Linter().run()
    for f in findings:
        print(f)
    if findings:
        print("lint_profess: %d finding(s)" % len(findings))
        return 1
    print("lint_profess: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
