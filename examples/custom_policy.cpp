/**
 * @file
 * Writing a custom migration policy against the public API.
 *
 * Implements "EagerReuse", a ~40-line policy a downstream user might
 * prototype: promote an M2 block once its STC access counter shows
 * at least `k` accesses in the current residency AND the incumbent
 * has seen fewer - a middle ground between CAMEO's threshold-1 and
 * MDM's learned predictions.  The example plugs it into a System via
 * hybrid::HybridController directly (the policy registry in
 * sim::System covers only built-ins) and races it against three
 * built-ins on the same workload.
 *
 * Usage: custom_policy [program=soplex] [k=4] [instr=<n>]
 */

#include <cstdio>

#include "common/config.hh"
#include "policy/policy.hh"
#include "sim/experiment.hh"

using namespace profess;

namespace
{

/** The custom policy: residency-count race with the incumbent. */
class EagerReusePolicy : public policy::MigrationPolicy
{
  public:
    explicit EagerReusePolicy(unsigned k) : k_(k) {}

    const char *name() const override { return "eager-reuse"; }
    unsigned writeWeight() const override { return 8; }

    policy::Decision
    onM2Access(const policy::AccessInfo &info) override
    {
        const hybrid::StcMeta &m = *info.meta;
        unsigned mine = m.ac[info.slot];
        unsigned incumbent = m.ac[info.m1Slot];
        if (mine >= k_ && mine > incumbent)
            return policy::Decision::Swap;
        return policy::Decision::NoSwap;
    }

  private:
    unsigned k_;
};

/** Run one program under an externally supplied policy. */
sim::RunResult
runWithPolicy(const sim::SystemConfig &cfg,
              policy::MigrationPolicy &pol,
              const std::string &program)
{
    // Assemble the system pieces by hand - the same wiring
    // sim::System does internally, using only public headers.
    EventQueue eq;
    mem::MemorySystemConfig mc;
    mc.numChannels = cfg.numChannels;
    mc.m1BytesPerChannel = cfg.m1BytesPerChannel;
    mc.m2BytesPerChannel = cfg.m2BytesPerChannel;
    mem::MemorySystem memory(eq, mc);

    hybrid::HybridLayout layout = hybrid::HybridLayout::build(
        cfg.m1BytesPerChannel, cfg.m2BytesPerChannel,
        cfg.numChannels, cfg.numRegions, cfg.slotsPerGroup);
    os::PageAllocator alloc(layout.numGroups, cfg.slotsPerGroup,
                            cfg.numRegions, 1, cfg.allocSeed);

    hybrid::HybridController::Params hp;
    hp.stc = cfg.stc;
    hp.numPrograms = 1;
    hybrid::HybridController ctrl(eq, memory, layout, hp, pol,
                                  alloc);

    struct Port : public cpu::MemPort
    {
        os::PageAllocator *alloc;
        hybrid::HybridController *ctrl;
        void
        issue(ProgramId p, Addr vaddr, bool w,
              InlineCallback done) override
        {
            std::uint64_t frame =
                alloc->translate(p, vaddr / os::pageBytes);
            ctrl->access(p,
                         frame * os::pageBytes +
                             vaddr % os::pageBytes,
                         w, std::move(done));
        }
    } port;
    port.alloc = &alloc;
    port.ctrl = &ctrl;

    auto source =
        trace::makeSpecSource(program, trace::defaultScale, 1);
    cpu::CoreModel core(eq, cfg.core, *source, port, 0);
    core.start();
    ctrl.startPeriodic();
    eq.run([&]() { return core.quotaReached(); });
    ctrl.stopPeriodic();

    sim::RunResult r;
    r.policy = pol.name();
    r.ipc.push_back(core.ipcAtQuota());
    r.servedTotal = ctrl.servedTotal();
    r.swaps = ctrl.swapCount();
    r.stcHitRate = ctrl.stcHitRate();
    const auto &ps = ctrl.programStats(0);
    r.m1Fraction =
        ps.served ? static_cast<double>(ps.servedFromM1) /
                        static_cast<double>(ps.served)
                  : 0.0;
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    std::string program = cfg.getString("program", "soplex");
    unsigned k = static_cast<unsigned>(cfg.getUint("k", 4));
    std::uint64_t instr = cfg.getUint(
        "instr", sim::ExperimentRunner::instrFromEnv(2'000'000));

    sim::SystemConfig sys = sim::SystemConfig::singleCore();
    sys.core.instrQuota = instr;
    sys.core.warmupInstr = instr / 2;

    std::printf("custom EagerReuse(k=%u) vs built-ins on %s\n\n", k,
                program.c_str());
    std::printf("%-12s %8s %8s %8s %9s\n", "policy", "IPC", "M1%",
                "swaps", "swapFrac");

    EagerReusePolicy eager(k);
    sim::RunResult r = runWithPolicy(sys, eager, program);
    std::printf("%-12s %8.3f %7.1f%% %8llu %8.2f%%\n", r.policy.c_str(),
                r.ipc[0], 100.0 * r.m1Fraction,
                static_cast<unsigned long long>(r.swaps),
                r.servedTotal
                    ? 100.0 * static_cast<double>(r.swaps) /
                          static_cast<double>(r.servedTotal)
                    : 0.0);

    sim::ExperimentRunner runner(sys);
    for (const char *pol : {"cameo", "pom", "mdm"}) {
        sim::RunResult b = runner.run(pol, {program});
        std::printf("%-12s %8.3f %7.1f%% %8llu %8.2f%%\n", pol,
                    b.ipc[0], 100.0 * b.m1Fraction,
                    static_cast<unsigned long long>(b.swaps),
                    100.0 * b.swapFraction);
    }
    return 0;
}
