/**
 * @file
 * Fairness study: the paper's headline experiment on one workload.
 *
 * Runs a Table 10 multiprogrammed workload under PoM, MDM and
 * ProFess on the quad-core system and prints per-program slowdowns,
 * weighted speedup, unfairness (max slowdown) and energy
 * efficiency - the Sec. 4.3 figures of merit.
 *
 * Usage: fairness_study [workload=w09] [instr=<n>] [warmup=<n>]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/experiment.hh"

using namespace profess;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    std::string wname = cfg.getString("workload", "w09");
    const sim::WorkloadSpec *w = sim::findWorkload(wname);
    fatal_if(w == nullptr, "unknown workload '%s' (w01..w19)",
             wname.c_str());

    sim::SystemConfig sys = sim::SystemConfig::quadCore();
    sys.core.instrQuota = cfg.getUint(
        "instr", sim::ExperimentRunner::instrFromEnv(2'000'000));
    sys.core.warmupInstr = cfg.getUint("warmup", 1'000'000);
    sim::ExperimentRunner runner(sys);

    std::printf("workload %s: %s %s %s %s\n", wname.c_str(),
                w->programs[0], w->programs[1], w->programs[2],
                w->programs[3]);
    std::printf("%-9s %28s %8s %8s %10s %9s\n", "policy",
                "slowdowns", "maxSdn", "wSpeed", "eff(r/J)",
                "swapFrac");

    for (const char *pol : {"pom", "mdm", "profess"}) {
        sim::MultiMetrics m = runner.runMulti(pol, *w);
        char sdn[64];
        std::snprintf(sdn, sizeof(sdn),
                      "%5.2f %5.2f %5.2f %5.2f", m.slowdown[0],
                      m.slowdown[1], m.slowdown[2], m.slowdown[3]);
        std::printf("%-9s %28s %8.2f %8.3f %10.3e %8.2f%%\n", pol,
                    sdn, m.maxSlowdown, m.weightedSpeedup,
                    m.efficiency, 100.0 * m.run.swapFraction);
    }

    std::printf("\nThe paper's story (Sec. 5.4): MDM lifts everyone "
                "by making better swaps;\nProFess additionally "
                "trades speed of lightly-affected programs for the\n"
                "most-suffering one, cutting the max slowdown "
                "further.\n");
    return 0;
}
