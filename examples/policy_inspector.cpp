/**
 * @file
 * Policy inspector: runs one program (or a workload) and dumps the
 * internal state of the active migration policy - MDM's learned
 * expectation tables and decision-path histogram, RSM's slowdown
 * factors, PoM's active threshold.  Demonstrates the introspection
 * surface of the public API.
 *
 * Usage: policy_inspector [program=<name>|workload=<wNN>]
 *                         [policy=mdm|profess|pom] [instr=<n>]
 */

#include <cstdio>

#include "common/config.hh"
#include "core/mdm_policy.hh"
#include "core/profess.hh"
#include "policy/pom.hh"
#include "sim/experiment.hh"

using namespace profess;

namespace
{

void
dumpMdm(const core::Mdm &mdm, unsigned num_programs)
{
    std::printf("\nMDM decision paths:\n");
    using P = core::Mdm::DecidePath;
    const char *names[] = {"no-benefit", "vacant-M1", "idle-M1",
                           "depleted-M1", "net-benefit", "rejected"};
    for (unsigned i = 0;
         i < static_cast<unsigned>(P::NumPaths); ++i) {
        std::printf("  %-12s: %llu\n", names[i],
                    static_cast<unsigned long long>(
                        mdm.pathCount(static_cast<P>(i))));
    }
    std::printf("\nMDM expectation tables (per program):\n");
    for (unsigned p = 0; p < num_programs; ++p) {
        std::printf("  prog %u: updates=%llu exp_cnt(qI)= ", p,
                    static_cast<unsigned long long>(
                        mdm.updates(static_cast<ProgramId>(p))));
        for (unsigned q = 0; q < core::numQacValues; ++q) {
            std::printf("%.1f ",
                        mdm.expCnt(static_cast<ProgramId>(p),
                                   static_cast<std::uint8_t>(q)));
        }
        std::printf(" avg_cnt(qE)= ");
        for (unsigned q = 1; q < core::numQacValues; ++q) {
            std::printf("%.1f ",
                        mdm.avgCnt(static_cast<ProgramId>(p),
                                   static_cast<std::uint8_t>(q)));
        }
        std::printf("\n");
    }
}

void
dumpRsm(const core::Rsm &rsm, unsigned num_programs)
{
    std::printf("\nRSM slowdown factors:\n");
    for (unsigned p = 0; p < num_programs; ++p) {
        auto id = static_cast<ProgramId>(p);
        std::printf("  prog %u: SF_A=%.3f SF_B=%.3f periods=%llu\n",
                    p, rsm.sfA(id), rsm.sfB(id),
                    static_cast<unsigned long long>(rsm.periods(id)));
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    std::string policy = cfg.getString("policy", "mdm");
    std::uint64_t instr = cfg.getUint(
        "instr", sim::ExperimentRunner::instrFromEnv(4'000'000));

    std::vector<std::string> programs;
    sim::SystemConfig sys;
    std::string wl = cfg.getString("workload", "");
    if (!wl.empty()) {
        const sim::WorkloadSpec *w = sim::findWorkload(wl);
        fatal_if(w == nullptr, "unknown workload '%s'", wl.c_str());
        programs.assign(w->programs.begin(), w->programs.end());
        sys = sim::SystemConfig::quadCore();
    } else {
        programs.push_back(cfg.getString("program", "soplex"));
        sys = sim::SystemConfig::singleCore();
    }
    sys.core.instrQuota = instr;

    std::vector<std::unique_ptr<trace::TraceSource>> sources;
    for (std::size_t i = 0; i < programs.size(); ++i) {
        sources.push_back(trace::makeSpecSource(
            programs[i], trace::defaultScale, 1 + 1009 * (i + 1)));
    }
    sim::System system(sys, policy, std::move(sources));
    system.run();

    std::printf("=== %s ===\n", policy.c_str());
    for (unsigned i = 0; i < system.numPrograms(); ++i) {
        const auto &ps =
            system.controller().programStats(static_cast<ProgramId>(i));
        std::printf("  %-10s ipc=%.3f served=%llu fromM1=%.1f%%\n",
                    programs[i].c_str(),
                    system.core(i).quotaReached()
                        ? system.core(i).ipcAtQuota()
                        : 0.0,
                    static_cast<unsigned long long>(ps.served),
                    ps.served
                        ? 100.0 * static_cast<double>(ps.servedFromM1) /
                              static_cast<double>(ps.served)
                        : 0.0);
    }
    std::printf("  swaps=%llu stcHit=%.1f%%\n",
                static_cast<unsigned long long>(
                    system.controller().swapCount()),
                100.0 * system.controller().stcHitRate());

    if (auto *mp = dynamic_cast<core::MdmPolicy *>(&system.policy())) {
        dumpMdm(mp->engine(), system.numPrograms());
    } else if (auto *pp = system.professPolicy()) {
        dumpMdm(pp->mdm(), system.numPrograms());
        dumpRsm(pp->rsm(), system.numPrograms());
        std::printf("\nTable 7 case counts: same=%llu c1=%llu "
                    "c2=%llu c3=%llu default=%llu\n",
                    static_cast<unsigned long long>(pp->caseCount(
                        core::ProfessPolicy::GuidanceCase::SameProgram)),
                    static_cast<unsigned long long>(pp->caseCount(
                        core::ProfessPolicy::GuidanceCase::Case1)),
                    static_cast<unsigned long long>(pp->caseCount(
                        core::ProfessPolicy::GuidanceCase::Case2)),
                    static_cast<unsigned long long>(pp->caseCount(
                        core::ProfessPolicy::GuidanceCase::Case3)),
                    static_cast<unsigned long long>(pp->caseCount(
                        core::ProfessPolicy::GuidanceCase::Default)));
    } else if (auto *pom =
                   dynamic_cast<policy::PomPolicy *>(&system.policy())) {
        std::printf("\nPoM active threshold: %u (adaptations %llu)\n",
                    pom->activeThreshold(),
                    static_cast<unsigned long long>(
                        pom->adaptations()));
    }
    return 0;
}
