/**
 * @file
 * Capacity planning: how much DRAM does a hybrid memory need?
 *
 * Sweeps the M1:M2 capacity ratio (Sec. 5.2) for one program and
 * prints IPC, M1 service fraction and memory power under a chosen
 * policy - the kind of question a system architect would ask this
 * library ("can I halve DRAM and keep 90% of performance?").
 *
 * Usage: capacity_planning [program=milc] [policy=profess]
 *                          [instr=<n>]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/experiment.hh"

using namespace profess;

namespace
{

struct RatioPoint
{
    const char *label;
    unsigned slots;
    std::uint64_t m1Bytes;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    std::string program = cfg.getString("program", "milc");
    std::string policy = cfg.getString("policy", "profess");
    std::uint64_t instr = cfg.getUint(
        "instr", sim::ExperimentRunner::instrFromEnv(2'000'000));

    const RatioPoint points[] = {
        {"1:4 ", 5, 2 * MiB},
        {"1:8 ", 9, 1 * MiB},
        {"1:16", 17, 512 * KiB},
    };

    std::printf("capacity sweep for %s under %s\n", program.c_str(),
                policy.c_str());
    std::printf("%-6s %10s %8s %8s %8s %9s\n", "ratio", "M1-bytes",
                "IPC", "M1%", "power-W", "swapFrac");
    double base_ipc = 0.0;
    for (const RatioPoint &pt : points) {
        sim::SystemConfig sys = sim::SystemConfig::singleCore();
        sys.core.instrQuota = instr;
        sys.core.warmupInstr = instr / 2;
        sys.slotsPerGroup = pt.slots;
        sys.m1BytesPerChannel = pt.m1Bytes;
        sim::ExperimentRunner runner(sys);
        sim::RunResult r = runner.run(policy, {program});
        if (base_ipc == 0.0)
            base_ipc = r.ipc[0];
        std::printf("%-6s %10llu %8.3f %7.1f%% %8.3f %8.2f%%"
                    "   (%.0f%% of 1:4 IPC)\n",
                    pt.label,
                    static_cast<unsigned long long>(pt.m1Bytes),
                    r.ipc[0], 100.0 * r.m1Fraction, r.watts,
                    100.0 * r.swapFraction,
                    100.0 * r.ipc[0] / base_ipc);
    }
    return 0;
}
