/**
 * @file
 * Quickstart: build a single-core hybrid-memory system, run one
 * SPEC-like workload under ProFess, and print the headline
 * statistics.
 *
 * Usage: quickstart [program=<name>] [policy=<name>] [instr=<n>]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/experiment.hh"

using namespace profess;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    std::string program = cfg.getString("program", "soplex");
    std::string policy = cfg.getString("policy", "profess");
    std::uint64_t instr = cfg.getUint(
        "instr", sim::ExperimentRunner::instrFromEnv(2'000'000));

    sim::SystemConfig sys = sim::SystemConfig::singleCore();
    sys.core.instrQuota = instr;
    sys.statsFoldInterval = static_cast<Cycles>(
        cfg.getUint("fold", sys.statsFoldInterval));
    sys.minBenefit = static_cast<unsigned>(
        cfg.getUint("minbenefit", sys.minBenefit));

    sim::ExperimentRunner runner(sys);
    std::printf("running %s under %s for %llu instructions...\n",
                program.c_str(), policy.c_str(),
                static_cast<unsigned long long>(instr));
    sim::RunResult r = runner.run(policy, {program});

    std::printf("\n=== %s / %s ===\n", program.c_str(),
                policy.c_str());
    std::printf("  IPC                 : %.3f\n", r.ipc[0]);
    std::printf("  simulated time      : %.3f ms\n",
                r.seconds * 1e3);
    std::printf("  memory requests     : %llu\n",
                static_cast<unsigned long long>(r.servedTotal));
    std::printf("  served from M1      : %.1f%%\n",
                100.0 * r.m1Fraction);
    std::printf("  swaps               : %llu (%.2f%% of requests)\n",
                static_cast<unsigned long long>(r.swaps),
                100.0 * r.swapFraction);
    std::printf("  STC hit rate        : %.1f%%\n",
                100.0 * r.stcHitRate);
    std::printf("  mean read latency   : %.1f ns\n",
                r.meanReadLatencyNs);
    std::printf("  memory power        : %.3f W\n", r.watts);
    std::printf("  row hit rate        : %.1f%%\n",
                100.0 * r.rowHitRate);
    std::printf("  writes landing in M2: %.1f%%\n",
                100.0 * r.m2WriteFraction);
    std::printf("  energy efficiency   : %.3e req/s/W\n",
                sim::energyEfficiency(r.servedTotal, r.joules));
    return 0;
}
