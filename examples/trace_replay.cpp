/**
 * @file
 * Trace record & replay: deterministic experiment pipelines.
 *
 * 1. Builds an instruction-level synthetic stream, filters it
 *    through the Table 8 L1/L2/L3 hierarchy (cpu::CacheFilterSource)
 *    and records the resulting main-memory trace to a file.
 * 2. Replays the file through the full system twice under two
 *    policies, demonstrating bit-identical inputs for comparisons
 *    (this is how externally captured traces - e.g. converted Pin
 *    traces - plug into the framework).
 *
 * Usage: trace_replay [accesses=200000] [file=/tmp/profess.trace]
 */

#include <cstdio>

#include "common/config.hh"
#include "cpu/cache_filter.hh"
#include "sim/experiment.hh"
#include "trace/trace_file.hh"

using namespace profess;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    std::uint64_t accesses = cfg.getUint("accesses", 200'000);
    std::string path = cfg.getString("file", "/tmp/profess.trace");

    // 1. Record: instruction-level stream -> cache hierarchy ->
    //    main-memory trace.
    trace::SyntheticParams sp;
    sp.footprintBytes = 4 * MiB;
    sp.mpki = 500.0; // instruction-level accesses, pre-filter
    sp.writeFraction = 0.3;
    sp.seed = 42;
    auto mix = std::make_unique<trace::MixedPattern>();
    mix->add(0.6, std::make_unique<trace::MultiStreamPattern>(
                      sp.footprintBytes, 8));
    mix->add(0.4, std::make_unique<trace::HotspotPattern>(
                      sp.footprintBytes, 1.0));
    trace::SyntheticTraceSource inner(sp, std::move(mix));
    cpu::CacheFilterSource filtered(inner,
                                    cache::Hierarchy::Params{});
    std::uint64_t written =
        trace::recordTrace(filtered, accesses, path);
    std::printf("recorded %llu post-L3 accesses to %s\n",
                static_cast<unsigned long long>(written),
                path.c_str());
    std::printf("  (consumed %llu instruction-level accesses; L3 "
                "hit rate %.1f%%)\n",
                static_cast<unsigned long long>(
                    filtered.consumed()),
                100.0 * filtered.hierarchy().l3().hitRate());

    // 2. Replay the identical stream under two policies.
    std::printf("\nreplaying under pom and profess:\n");
    for (const char *pol : {"pom", "profess"}) {
        sim::SystemConfig sys = sim::SystemConfig::singleCore();
        sys.core.instrQuota = 500'000;
        sys.core.warmupInstr = 100'000;
        std::vector<std::unique_ptr<trace::TraceSource>> sources;
        sources.push_back(
            std::make_unique<trace::FileTraceSource>(path));
        sim::System system(sys, pol, std::move(sources));
        bool ok = system.run();
        std::printf("  %-8s IPC %.3f  fromM1 %5.1f%%  swaps %llu  "
                    "(%s)\n",
                    pol,
                    system.core(0).quotaReached()
                        ? system.core(0).ipcAtQuota()
                        : 0.0,
                    100.0 *
                        static_cast<double>(
                            system.controller()
                                .programStats(0)
                                .servedFromM1) /
                        static_cast<double>(
                            system.controller()
                                .programStats(0)
                                .served),
                    static_cast<unsigned long long>(
                        system.controller().swapCount()),
                    ok ? "completed" : "incomplete");
    }
    return 0;
}
